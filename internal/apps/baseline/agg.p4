// agg.p4 — handwritten TNA baseline of the SwitchML streaming
// aggregation protocol (paper §VII, AGG row of Table III).
// Equivalent wire behavior to the NetCL-generated program: NetCL-over-
// UDP messages, computation 1, reliable two-version slots, multicast
// of completed aggregates to group 42.
#include <core.p4>
#include <tna.p4>

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}
header ipv4_t {
    bit<8> version_ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}
header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}
header netcl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> act;
    bit<16> arg;
}
header d1_t {
    bit<8> ver;
    bit<16> bmp_idx;
    bit<16> agg_idx;
    bit<16> mask;
    bit<32> exp;
    bit<32> v_0;
    bit<32> v_1;
    bit<32> v_2;
    bit<32> v_3;
    bit<32> v_4;
    bit<32> v_5;
    bit<32> v_6;
    bit<32> v_7;
    bit<32> v_8;
    bit<32> v_9;
    bit<32> v_10;
    bit<32> v_11;
    bit<32> v_12;
    bit<32> v_13;
    bit<32> v_14;
    bit<32> v_15;
    bit<32> v_16;
    bit<32> v_17;
    bit<32> v_18;
    bit<32> v_19;
    bit<32> v_20;
    bit<32> v_21;
    bit<32> v_22;
    bit<32> v_23;
    bit<32> v_24;
    bit<32> v_25;
    bit<32> v_26;
    bit<32> v_27;
    bit<32> v_28;
    bit<32> v_29;
    bit<32> v_30;
    bit<32> v_31;
}
struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    udp_t udp;
    netcl_t netcl;
    d1_t d1;
}
struct metadata_t {
    bit<16> nexthop;
    bit<16> mcast_grp;
    bit<1> drop_flag;
    bit<16> egress_port;
    bit<16> seen;
    bit<1> not_seen;
    bit<8> target;
    bit<8> cnt;
    bit<16> bitmap;
}

parser IgParser(packet_in pkt, out headers_t hdr, out metadata_t meta,
                out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800 : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            17 : parse_udp;
            default : accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            20035 : parse_netcl;
            default : accept;
        }
    }
    state parse_netcl {
        pkt.extract(hdr.netcl);
        transition select(hdr.netcl.comp) {
            1 : parse_d1;
            default : accept;
        }
    }
    state parse_d1 {
        pkt.extract(hdr.d1);
        transition accept;
    }
}

control In(inout headers_t hdr, inout metadata_t meta,
        in ingress_intrinsic_metadata_t ig_intr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    Register<bit<16>, bit<32>>(256) bitmap0;
    Register<bit<16>, bit<32>>(256) bitmap1;
    Register<bit<8>, bit<32>>(512) count;
    Register<bit<32>, bit<32>>(512) exponent;
    RegisterAction<bit<16>, bit<32>, bit<16>>(bitmap0) bmp0_set = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = (m | hdr.d1.mask);
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(bitmap0) bmp0_clr = {
        void apply(inout bit<16> m, out bit<16> o) {
            m = (m & (~hdr.d1.mask));
            o = m;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(bitmap1) bmp1_set = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = (m | hdr.d1.mask);
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(bitmap1) bmp1_clr = {
        void apply(inout bit<16> m, out bit<16> o) {
            m = (m & (~hdr.d1.mask));
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(count) count_init = {
        void apply(inout bit<8> m, out bit<8> o) {
            m = meta.target;
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(count) count_dec = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            if ((meta.not_seen == 1w1)) {
                m = (m |-| 8w1);
            }
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(exponent) exp_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.exp;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(exponent) exp_max = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (hdr.d1.exp > m ? hdr.d1.exp : m);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_00;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_00) agg_00_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_0;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_00) agg_00_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_0);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_01;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_01) agg_01_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_1;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_01) agg_01_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_1);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_02;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_02) agg_02_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_2;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_02) agg_02_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_2);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_03;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_03) agg_03_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_3;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_03) agg_03_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_3);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_04;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_04) agg_04_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_4;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_04) agg_04_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_4);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_05;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_05) agg_05_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_5;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_05) agg_05_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_5);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_06;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_06) agg_06_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_6;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_06) agg_06_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_6);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_07;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_07) agg_07_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_7;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_07) agg_07_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_7);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_08;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_08) agg_08_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_8;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_08) agg_08_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_8);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_09;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_09) agg_09_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_9;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_09) agg_09_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_9);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_10;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_10) agg_10_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_10;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_10) agg_10_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_10);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_11;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_11) agg_11_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_11;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_11) agg_11_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_11);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_12;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_12) agg_12_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_12;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_12) agg_12_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_12);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_13;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_13) agg_13_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_13;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_13) agg_13_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_13);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_14;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_14) agg_14_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_14;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_14) agg_14_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_14);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_15;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_15) agg_15_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_15;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_15) agg_15_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_15);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_16;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_16) agg_16_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_16;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_16) agg_16_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_16);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_17;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_17) agg_17_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_17;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_17) agg_17_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_17);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_18;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_18) agg_18_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_18;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_18) agg_18_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_18);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_19;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_19) agg_19_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_19;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_19) agg_19_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_19);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_20;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_20) agg_20_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_20;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_20) agg_20_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_20);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_21;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_21) agg_21_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_21;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_21) agg_21_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_21);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_22;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_22) agg_22_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_22;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_22) agg_22_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_22);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_23;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_23) agg_23_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_23;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_23) agg_23_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_23);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_24;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_24) agg_24_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_24;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_24) agg_24_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_24);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_25;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_25) agg_25_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_25;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_25) agg_25_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_25);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_26;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_26) agg_26_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_26;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_26) agg_26_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_26);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_27;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_27) agg_27_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_27;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_27) agg_27_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_27);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_28;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_28) agg_28_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_28;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_28) agg_28_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_28);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_29;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_29) agg_29_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_29;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_29) agg_29_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_29);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_30;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_30) agg_30_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_30;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_30) agg_30_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_30);
            }
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_31;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_31) agg_31_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_31;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_31) agg_31_add = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.not_seen == 1w1)) {
                m = (m + hdr.d1.v_31);
            }
            o = m;
        }
    };
    action set_port(bit<16> port) {
        meta.egress_port = port;
    }
    action mark_drop() {
        meta.drop_flag = 1w1;
    }
    action set_target(bit<8> n) {
        meta.target = n;
    }
    table cfg_workers {
        actions = { set_target; }
        default_action = set_target(5);
    }
    table netcl_fwd {
        key = {
            meta.nexthop : exact;
        }
        actions = { set_port; mark_drop; }
        default_action = mark_drop();
        size = 256;
    }
    table l2_fwd {
        key = {
            hdr.ethernet.dst_addr : exact;
        }
        actions = { set_port; mark_drop; }
        default_action = mark_drop();
        size = 1024;
    }
    apply {
        if (hdr.netcl.isValid()) {
            if ((hdr.netcl.to == 16w1 || hdr.netcl.to == 16w65534)) {
                cfg_workers.apply();
                if ((hdr.d1.ver == 8w0)) {
                    meta.bitmap = bmp0_set.execute((bit<32>)hdr.d1.bmp_idx);
                    bmp1_clr.execute((bit<32>)hdr.d1.bmp_idx);
                } else {
                    bmp0_clr.execute((bit<32>)hdr.d1.bmp_idx);
                    meta.bitmap = bmp1_set.execute((bit<32>)hdr.d1.bmp_idx);
                }
                meta.seen = (meta.bitmap & hdr.d1.mask);
                if ((meta.seen == 16w0)) {
                    meta.not_seen = 1w1;
                } else {
                    meta.not_seen = 1w0;
                }
                if ((meta.bitmap == 16w0)) {
                    count_init.execute((bit<32>)hdr.d1.agg_idx);
                    exp_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_00_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_01_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_02_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_03_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_04_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_05_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_06_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_07_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_08_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_09_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_10_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_11_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_12_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_13_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_14_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_15_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_16_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_17_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_18_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_19_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_20_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_21_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_22_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_23_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_24_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_25_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_26_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_27_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_28_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_29_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_30_write.execute((bit<32>)hdr.d1.agg_idx);
                    agg_31_write.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.netcl.act = 8w1;
                    mark_drop();
                } else {
                    meta.cnt = count_dec.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.exp = exp_max.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_0 = agg_00_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_1 = agg_01_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_2 = agg_02_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_3 = agg_03_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_4 = agg_04_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_5 = agg_05_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_6 = agg_06_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_7 = agg_07_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_8 = agg_08_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_9 = agg_09_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_10 = agg_10_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_11 = agg_11_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_12 = agg_12_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_13 = agg_13_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_14 = agg_14_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_15 = agg_15_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_16 = agg_16_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_17 = agg_17_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_18 = agg_18_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_19 = agg_19_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_20 = agg_20_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_21 = agg_21_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_22 = agg_22_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_23 = agg_23_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_24 = agg_24_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_25 = agg_25_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_26 = agg_26_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_27 = agg_27_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_28 = agg_28_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_29 = agg_29_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_30 = agg_30_add.execute((bit<32>)hdr.d1.agg_idx);
                    hdr.d1.v_31 = agg_31_add.execute((bit<32>)hdr.d1.agg_idx);
                    if ((meta.not_seen == 1w0)) {
                        if ((meta.cnt == 8w0)) {
                            hdr.netcl.act = 8w5;
                            if ((hdr.netcl.from == 16w65535)) {
                                hdr.netcl.dst = hdr.netcl.src;
                                hdr.netcl.to = 16w65535;
                                meta.nexthop = hdr.netcl.src;
                            } else {
                                hdr.netcl.to = hdr.netcl.from;
                                meta.nexthop = hdr.netcl.from;
                            }
                        } else {
                            hdr.netcl.act = 8w1;
                            mark_drop();
                        }
                    } else {
                        if ((meta.cnt == 8w1)) {
                            hdr.netcl.act = 8w4;
                            hdr.netcl.arg = 16w42;
                            hdr.netcl.to = 16w65534;
                            meta.mcast_grp = 16w42;
                        } else {
                            hdr.netcl.act = 8w1;
                            mark_drop();
                        }
                    }
                }
                hdr.netcl.from = 16w1;
            } else {
                if ((hdr.netcl.to == 16w65535)) {
                    meta.nexthop = hdr.netcl.dst;
                } else {
                    meta.nexthop = hdr.netcl.to;
                }
            }
            if ((meta.drop_flag == 1w0)) {
                if ((meta.mcast_grp == 16w0)) {
                    netcl_fwd.apply();
                }
            }
        } else {
            l2_fwd.apply();
        }
    }
}

control IgDeparser(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.netcl);
        pkt.emit(hdr.d1);
    }
}

Pipeline(IgParser(), In(), IgDeparser()) pipe;
Switch(pipe) main;
