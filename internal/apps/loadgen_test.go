package apps

import (
	"testing"

	"netcl/internal/passes"
)

// TestLoadgenClosedLoop: a multi-shard closed-loop run must process
// every packet and verify byte-identical per-flow results against a
// single-shard replay.
func TestLoadgenClosedLoop(t *testing.T) {
	res, err := RunLoadgen(LoadgenConfig{
		Shards: 4, QueueDepth: 16, Hosts: 4, Pools: 16, Packets: 32,
		Verify: true, Target: passes.TargetTNA,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(16 * 32)
	if res.Submitted != want || res.Processed != want {
		t.Errorf("submitted %d processed %d, want %d", res.Submitted, res.Processed, want)
	}
	if res.Shed != 0 {
		t.Errorf("closed loop shed %d packets", res.Shed)
	}
	if res.VerifiedFlows != 16 {
		t.Errorf("verified %d flows, want 16", res.VerifiedFlows)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d per-flow mismatches vs single-shard replay", res.Mismatches)
	}
	if res.PPS <= 0 || res.P50Ns <= 0 {
		t.Errorf("degenerate metrics: pps=%f p50=%f", res.PPS, res.P50Ns)
	}
	if res.P99Ns < res.P50Ns {
		t.Errorf("p99 %f < p50 %f", res.P99Ns, res.P50Ns)
	}
}

// TestLoadgenWindowed: the in-flight cap bounds concurrent packets
// across all hosts without losing any work, and reports its peak.
func TestLoadgenWindowed(t *testing.T) {
	res, err := RunLoadgen(LoadgenConfig{
		Shards: 2, QueueDepth: 16, Hosts: 4, Pools: 8, Packets: 16,
		Window: 3, Verify: true, Target: passes.TargetTNA,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(8 * 16)
	if res.Submitted != want || res.Processed != want {
		t.Errorf("submitted %d processed %d, want %d", res.Submitted, res.Processed, want)
	}
	if res.PeakInFlight < 1 || res.PeakInFlight > 3 {
		t.Errorf("peak in-flight %d, want within (0,3]", res.PeakInFlight)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d per-flow mismatches with windowed submission", res.Mismatches)
	}
}

// TestLoadgenOpenLoop: a paced run sheds rather than blocks when
// queues fill; whatever was accepted must still verify per flow.
func TestLoadgenOpenLoop(t *testing.T) {
	res, err := RunLoadgen(LoadgenConfig{
		Shards: 2, QueueDepth: 8, Hosts: 2, Pools: 8, Packets: 16,
		OfferedPPS: 200_000, Verify: true, Target: passes.TargetTNA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted+res.Shed != 8*16 {
		t.Errorf("submitted %d + shed %d != offered %d", res.Submitted, res.Shed, 8*16)
	}
	if res.Processed != res.Submitted {
		t.Errorf("processed %d != submitted %d", res.Processed, res.Submitted)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d per-flow mismatches", res.Mismatches)
	}
}
