package apps

// loadgen.go is an open-loop load generator for the flow-sharded data
// plane: many simulated hosts stream SwitchML-style AGG traffic at a
// configurable offered load into a bmv2.Sharded engine, measuring
// sustained throughput and p50/p90/p99 latency. Each pool index is one
// flow; pools are partitioned across hosts, so every flow has a single
// submitter (per-flow FIFO) and its packets serialize on one shard
// (the shard-by-flow invariant). Verification replays each flow's
// accepted packets, flow-major, on a fresh single-shard switch and
// compares per-flow result-hash chains — the sharded run must be
// byte-identical per flow.

import (
	"fmt"
	gort "runtime"
	"sync"
	"time"

	"netcl/internal/bmv2"
	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// LoadgenConfig parameterizes one load-generator run.
type LoadgenConfig struct {
	// Shards is the worker count of the sharded engine (default 1).
	Shards int
	// QueueDepth bounds each shard's queue (default 256).
	QueueDepth int
	// Burst caps the jobs a worker drains per wakeup into one burst
	// execution (0 = bmv2.MaxBurst, 1 disables bursting).
	Burst int
	// Hosts is the number of concurrent submitter goroutines (default 4).
	Hosts int
	// Pools is the number of AGG pool indices = flows (default 64).
	// Pools are partitioned across hosts.
	Pools int
	// Packets is the packet count per flow (default 128).
	Packets int
	// OfferedPPS is the total offered load in packets/sec; 0 runs
	// closed-loop at maximum rate (retrying on backpressure instead of
	// shedding).
	OfferedPPS float64
	// Window caps the packets in flight (submitted, completion callback
	// not yet run) across all hosts; 0 leaves the load generator
	// open-throttle (the pre-windowing behavior).
	Window int
	// Verify replays every flow on a fresh single-shard switch and
	// compares result-hash chains.
	Verify bool
	// Target selects the compile target (default TNA).
	Target passes.Target
}

// LoadgenResult reports one run.
type LoadgenResult struct {
	Shards     int     `json:"shards"`
	Burst      int     `json:"burst"`
	Hosts      int     `json:"hosts"`
	Pools      int     `json:"pools"`
	OfferedPPS float64 `json:"offered_pps"`
	Submitted  uint64  `json:"submitted"`
	Processed  uint64  `json:"processed"`
	// Shed counts packets dropped at submission because the flow's
	// shard queue was full (open loop only).
	Shed uint64 `json:"shed"`
	// QueueFull counts all queue-full rejections, including closed-loop
	// retries of the same packet.
	QueueFull  uint64  `json:"queue_full"`
	DurationNs float64 `json:"duration_ns"`
	PPS        float64 `json:"pkts_per_sec"`
	// PeakInFlight is the highest concurrent in-flight count observed
	// when Window > 0 bounds the submitters.
	PeakInFlight int `json:"peak_in_flight,omitempty"`
	P50Ns      float64 `json:"p50_ns"`
	P90Ns      float64 `json:"p90_ns"`
	P99Ns      float64 `json:"p99_ns"`
	MaxNs      float64 `json:"max_ns"`
	// VerifiedFlows/Mismatches report the per-flow determinism check.
	VerifiedFlows int `json:"verified_flows"`
	Mismatches    int `json:"mismatches"`
}

// aggFlowKey extracts the AGG flow identity — the 16-bit pool index
// bmp_idx, the field that selects every register slot the packet
// touches — from a framed packet (arg offset: 1-byte ver first).
func aggFlowKey(pkt []byte) uint64 {
	off := runtime.FrameOverhead + wire.HeaderBytes + 1
	if len(pkt) < off+2 {
		return 0
	}
	return uint64(pkt[off])<<8 | uint64(pkt[off+1])
}

// loadHash folds one processing outcome into a flow's result-hash
// chain (FNV-1a over output bytes and the egress decision).
func loadHash(h uint64, res *bmv2.Result, err error) uint64 {
	const prime = 1099511628211
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	if err != nil {
		step(0xEE)
		return h
	}
	for _, b := range res.Data {
		step(b)
	}
	step(byte(res.Port))
	step(byte(res.Port >> 8))
	step(byte(res.Mcast))
	if res.Dropped {
		step(1)
	}
	return h
}

// buildLoadgenPackets compiles AGG with NUM_SLOTS=pools and
// pregenerates each flow's packet stream: two-worker SwitchML rounds
// (first packet of a round initializes the slot and is dropped, the
// second completes it and multicasts the aggregate), with the version
// bit alternating per round — exactly the protocol's steady state.
func buildLoadgenPackets(cfg LoadgenConfig) (*bmv2.Switch, [][][]byte, error) {
	app := ByName("AGG")
	defines := map[string]uint64{}
	for k, v := range app.Defines {
		defines[k] = v
	}
	defines["NUM_SLOTS"] = uint64(cfg.Pools)
	defines["NUM_WORKERS"] = 2
	app = &App{Name: app.Name, NetCL: app.NetCL, Defines: defines,
		Devices: app.Devices, BaselineFile: app.BaselineFile}
	prog, specs, err := CompileApp(app, cfg.Target, 1)
	if err != nil {
		return nil, nil, err
	}
	spec := specs[1]
	slotSize := int(defines["SLOT_SIZE"])

	packets := make([][][]byte, cfg.Pools)
	vals := make([]uint64, slotSize)
	for p := 0; p < cfg.Pools; p++ {
		packets[p] = make([][]byte, cfg.Packets)
		for s := 0; s < cfg.Packets; s++ {
			round, half := s/2, s%2
			ver := uint64(round % 2)
			for i := range vals {
				vals[i] = uint64(p*1000+round+i) & 0xffffffff
			}
			msg, err := runtime.Pack(spec,
				runtime.Message{Src: uint16(10 + half), Dst: 100, Device: 1, Comp: 1}.Header(),
				[][]uint64{{ver}, {uint64(p)}, {uint64(p) + ver*uint64(cfg.Pools)},
					{1 << uint(half)}, {uint64(round)}, vals})
			if err != nil {
				return nil, nil, err
			}
			packets[p][s] = runtime.Frame(msg, uint64(10+half), 0)
		}
	}
	sw := bmv2.New(prog)
	if !sw.Compiled() {
		return nil, nil, fmt.Errorf("loadgen: AGG did not compile: %v", sw.CompileErr())
	}
	return sw, packets, nil
}

// RunLoadgen drives one load-generator run.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Hosts <= 0 {
		cfg.Hosts = 4
	}
	if cfg.Pools <= 0 {
		cfg.Pools = 64
	}
	if cfg.Packets <= 0 {
		cfg.Packets = 128
	}
	sw, packets, err := buildLoadgenPackets(cfg)
	if err != nil {
		return nil, err
	}
	sh, err := bmv2.NewSharded(sw, bmv2.ShardedConfig{
		Shards: cfg.Shards, QueueDepth: cfg.QueueDepth, FlowKey: aggFlowKey,
		Burst: cfg.Burst,
	})
	if err != nil {
		return nil, err
	}
	defer sh.Close()

	// Per-flow state: the hash chain and histogram are written only by
	// the flow's shard goroutine (the shard-by-flow invariant makes the
	// unsynchronized writes safe); accepted[] only by the flow's host.
	hashes := make([]uint64, cfg.Pools)
	hists := make([]Hist, cfg.Pools)
	accepted := make([][]bool, cfg.Pools)
	for p := range accepted {
		accepted[p] = make([]bool, cfg.Packets)
	}

	burst := cfg.Burst
	if burst <= 0 || burst > bmv2.MaxBurst {
		burst = bmv2.MaxBurst
	}
	res := &LoadgenResult{
		Shards: cfg.Shards, Burst: burst, Hosts: cfg.Hosts, Pools: cfg.Pools,
		OfferedPPS: cfg.OfferedPPS,
	}
	var hostInterval time.Duration
	if cfg.OfferedPPS > 0 {
		hostInterval = time.Duration(float64(time.Second) * float64(cfg.Hosts) / cfg.OfferedPPS)
	}

	// The Window knob bounds in-flight packets across all hosts with a
	// shared FlightWindow: a slot is taken at submission and released by
	// the completion callback (or immediately when the packet sheds).
	fw := runtime.NewFlightWindow(cfg.Window, nil)

	var wg sync.WaitGroup
	var shed, submitted uint64
	var mu sync.Mutex // folds per-host totals
	start := time.Now()
	for h := 0; h < cfg.Hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			var hostShed, hostSent uint64
			k := 0 // this host's packet index, for the open-loop schedule
			for s := 0; s < cfg.Packets; s++ {
				for p := h; p < cfg.Pools; p += cfg.Hosts {
					sched := time.Now()
					if hostInterval > 0 {
						sched = start.Add(time.Duration(k) * hostInterval)
						if d := time.Until(sched); d > 0 {
							time.Sleep(d)
						}
					}
					k++
					flow := p
					cb := func(r *bmv2.Result, err error) {
						hashes[flow] = loadHash(hashes[flow], r, err)
						hists[flow].Record(uint64(time.Since(sched)))
						fw.Release()
					}
					fw.Acquire()
					if cfg.OfferedPPS > 0 {
						// Open loop: a full queue sheds the packet.
						if sh.Submit(packets[p][s], cb) {
							accepted[p][s] = true
							hostSent++
						} else {
							hostShed++
							fw.Release() // the callback will never run
						}
					} else {
						// Closed loop: retry until the queue accepts.
						for !sh.Submit(packets[p][s], cb) {
							gort.Gosched()
						}
						accepted[p][s] = true
						hostSent++
					}
				}
			}
			mu.Lock()
			shed += hostShed
			submitted += hostSent
			mu.Unlock()
		}(h)
	}
	wg.Wait()
	sh.Drain()
	res.DurationNs = float64(time.Since(start))
	res.Submitted = submitted
	res.Shed = shed
	st := sh.Stats()
	res.Processed = st.Processed
	res.QueueFull = st.QueueFull
	if cfg.Window > 0 {
		res.PeakInFlight = fw.Peak()
	}
	if res.DurationNs > 0 {
		res.PPS = float64(res.Processed) / (res.DurationNs / 1e9)
	}

	var all Hist
	for p := range hists {
		all.Merge(&hists[p])
	}
	res.P50Ns = float64(all.Quantile(0.50))
	res.P90Ns = float64(all.Quantile(0.90))
	res.P99Ns = float64(all.Quantile(0.99))
	res.MaxNs = float64(all.Max())

	if cfg.Verify {
		ref, refPkts, err := buildLoadgenPackets(cfg)
		if err != nil {
			return nil, err
		}
		for p := 0; p < cfg.Pools; p++ {
			var want uint64
			for s := 0; s < cfg.Packets; s++ {
				if !accepted[p][s] {
					continue
				}
				r, err := ref.Process(refPkts[p][s], 0)
				want = loadHash(want, r, err)
			}
			res.VerifiedFlows++
			if want != hashes[p] {
				res.Mismatches++
			}
		}
	}
	return res, nil
}
