package apps

import (
	"strings"
	"testing"
	"time"

	"netcl/internal/netsim"
	"netcl/internal/passes"
	"netcl/internal/runtime"
)

// Chaos tests: the experiment drivers under seeded probabilistic fault
// injection. Every simulator run is fully deterministic (fixed seed,
// discrete-event time), so the counters below are exact.

// TestAggUnderLoss is the acceptance case: AGG completes correctly
// under 1% injected loss on the simulated network, with retransmission
// and loss counters reported.
func TestAggUnderLoss(t *testing.T) {
	res, err := RunAgg(AggConfig{
		Workers: 3, Chunks: 40, Window: 2, Target: passes.TargetTNA,
		Faults: netsim.FaultConfig{LossRate: 0.01, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3*40 {
		t.Errorf("completed %d slots, want 120", res.Completed)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d aggregation mismatches despite recovery", res.Mismatches)
	}
	if res.PacketsLost == 0 {
		t.Error("1%% loss over ~500 traversals dropped nothing; injection broken")
	}
	if res.Retransmissions == 0 {
		t.Error("packets were lost but nothing was retransmitted")
	}
}

// TestAggUnderHeavyChaos piles loss, duplication, and reordering jitter
// together; the slot protocol must still aggregate every chunk once.
func TestAggUnderHeavyChaos(t *testing.T) {
	res, err := RunAgg(AggConfig{
		Workers: 3, Chunks: 20, Window: 2, Target: passes.TargetTNA,
		Faults: netsim.FaultConfig{LossRate: 0.05, DupRate: 0.02, JitterNs: 500, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3*20 || res.Mismatches != 0 {
		t.Errorf("completed %d (want 60), mismatches %d (want 0)", res.Completed, res.Mismatches)
	}
	if res.PacketsLost == 0 || res.Retransmissions == 0 {
		t.Errorf("chaos not exercised: %d lost, %d retransmissions", res.PacketsLost, res.Retransmissions)
	}
}

// TestAggDeterministicUnderSeed checks reproducibility: the same seed
// must produce the identical fault pattern and counters.
func TestAggDeterministicUnderSeed(t *testing.T) {
	cfg := AggConfig{
		Workers: 2, Chunks: 16, Window: 2, Target: passes.TargetTNA,
		Faults: netsim.FaultConfig{LossRate: 0.03, JitterNs: 300, Seed: 9},
	}
	a, err := RunAgg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAgg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock event rate is not part of the determinism contract;
	// everything in simulated time and counters is.
	a.Sim.EventsPerSec, b.Sim.EventsPerSec = 0, 0
	if *a != *b {
		t.Errorf("same seed diverged:\n  %+v\n  %+v", *a, *b)
	}
}

// TestAggRetryBudget starves the retry budget (every packet toward the
// switch eventually lost is unrecoverable with 0 budget headroom) and
// checks the driver terminates with ErrRetryBudget semantics instead
// of spinning forever.
func TestAggRetryBudget(t *testing.T) {
	_, err := RunAgg(AggConfig{
		Workers: 2, Chunks: 8, Window: 2, Target: passes.TargetTNA,
		Faults:      netsim.FaultConfig{LossRate: 0.9, Seed: 3},
		RetryBudget: 4,
	})
	if err == nil {
		t.Fatal("90% loss with a budget of 4 should exhaust the retry budget")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestPaxosUnderLoss is the acceptance case for consensus: all
// commands are chosen and delivered exactly once under 1% loss.
func TestPaxosUnderLoss(t *testing.T) {
	res, err := RunPaxos(PaxosConfig{
		Commands: 16, Target: passes.TargetTNA,
		Faults: netsim.FaultConfig{LossRate: 0.01, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 16 || res.Undelivered != 0 {
		t.Errorf("delivered %d/16 (%d undelivered)", res.Delivered, res.Undelivered)
	}
	if res.WrongValue != 0 {
		t.Errorf("%d wrong values", res.WrongValue)
	}
}

// TestCacheUnderLoss: idempotent GETs retransmit; every request must be
// answered with the right value.
func TestCacheUnderLoss(t *testing.T) {
	res, err := RunCache(CacheConfig{
		CachedKeys: 8, TotalKeys: 16, Requests: 64, Target: passes.TargetTNA,
		Faults: netsim.FaultConfig{LossRate: 0.02, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Hits + res.Misses; got != 64 {
		t.Errorf("answered %d/64 requests", got)
	}
	if res.WrongValues != 0 {
		t.Errorf("%d wrong values under loss", res.WrongValues)
	}
	if res.PacketsLost == 0 || res.Retransmissions == 0 {
		t.Errorf("loss not exercised: %d lost, %d retransmissions", res.PacketsLost, res.Retransmissions)
	}
}

// TestRunDispatcher drives an app through the unified Run entry point
// and checks the app/config mismatch guard.
func TestRunDispatcher(t *testing.T) {
	res, err := Run(ByName("AGG"), AggConfig{Workers: 2, Chunks: 8, Window: 2, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Summary(); !strings.Contains(s, "AGG") {
		t.Errorf("summary %q does not mention AGG", s)
	}
	if _, err := Run(ByName("PAXOS"), AggConfig{}); err == nil {
		t.Error("PAXOS app with an AGG config should be rejected")
	}
	if _, err := Run(nil, 42); err == nil {
		t.Error("unsupported config type should be rejected")
	}
	if _, err := Run(nil, nil); err == nil {
		t.Error("nil config should be rejected")
	}
	pres, err := Run(nil, &PaxosConfig{Commands: 4, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if s := pres.Summary(); !strings.Contains(s, "4/4") {
		t.Errorf("summary %q does not report 4/4 delivered", s)
	}
}

// TestRunAggUDP runs the aggregation over real UDP sockets, lossless.
func TestRunAggUDP(t *testing.T) {
	res, err := RunAggUDP(AggUDPConfig{
		Workers: 2, Chunks: 12, Window: 3, Target: passes.TargetTNA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2*12 || res.Mismatches != 0 {
		t.Errorf("completed %d (want 24), mismatches %d", res.Completed, res.Mismatches)
	}
}

// TestRunAggUDPUnderLoss is the acceptance case on the real-UDP
// backend: AGG completes correctly with seeded loss injected at the
// device. Retransmission counts vary with goroutine scheduling, so
// only correctness is asserted exactly.
func TestRunAggUDPUnderLoss(t *testing.T) {
	res, err := RunAggUDP(AggUDPConfig{
		Workers: 2, Chunks: 24, Window: 2, Target: passes.TargetTNA,
		Faults:            runtime.FaultSpec{LossRate: 0.05, Seed: 17},
		RetransmitTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2*24 || res.Mismatches != 0 {
		t.Errorf("completed %d (want 48), mismatches %d", res.Completed, res.Mismatches)
	}
	// ~200 RNG draws at 5%: a zero-drop run is a broken injector, not
	// bad luck (P < 1e-4).
	if res.PacketsLost == 0 {
		t.Error("5%% device loss dropped nothing; injection broken")
	}
	t.Logf("agg-udp under loss: %s", res.Summary())
}

// TestRunAggUDPBaseline checks the handwritten P4 over UDP, including
// the control-plane worker-count configuration.
func TestRunAggUDPBaseline(t *testing.T) {
	res, err := RunAggUDP(AggUDPConfig{
		Workers: 2, Chunks: 8, Window: 2, Target: passes.TargetTNA, Baseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 16 || res.Mismatches != 0 {
		t.Errorf("completed %d (want 16), mismatches %d", res.Completed, res.Mismatches)
	}
}

// TestRunPaxosUDP runs the five-device consensus over UDP, lossless.
func TestRunPaxosUDP(t *testing.T) {
	res, err := RunPaxosUDP(PaxosUDPConfig{Commands: 6, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 6 || res.WrongValue != 0 {
		t.Errorf("delivered %d/6, %d wrong values", res.Delivered, res.WrongValue)
	}
}

// TestHostpathChannelChaosSim drives the pipelined channel through
// seeded loss, duplication, and reordering jitter on the simulator
// backend, and checks the windowed run produces the byte-identical
// result stream of a stop-and-wait run: the window reorders transport
// traffic, never application results.
func TestHostpathChannelChaosSim(t *testing.T) {
	faults := netsim.FaultConfig{LossRate: 0.03, DupRate: 0.02, JitterNs: 500, Seed: 7}
	base, err := RunHostpath(HostpathConfig{Window: 1, Ops: 96, Faults: faults, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := RunHostpath(HostpathConfig{Window: 32, Ops: 96, Faults: faults, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if base.Mismatches != 0 || pipe.Mismatches != 0 {
		t.Errorf("wrong results under chaos: stop-and-wait %d, windowed %d",
			base.Mismatches, pipe.Mismatches)
	}
	if base.Results != pipe.Results {
		t.Errorf("windowed result stream diverged from stop-and-wait: %#x vs %#x",
			pipe.Results, base.Results)
	}
	if pipe.Retransmits == 0 {
		t.Error("3% loss retransmitted nothing; recovery not exercised")
	}
	// Simulated time is deterministic: the same seed must reproduce the
	// run exactly.
	again, err := RunHostpath(HostpathConfig{Window: 32, Ops: 96, Faults: faults, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if again.SimDurationNs != pipe.SimDurationNs || again.Results != pipe.Results ||
		again.Retransmits != pipe.Retransmits {
		t.Errorf("same seed diverged:\n  %+v\n  %+v", *pipe, *again)
	}
}

// runCalcUDPChannel drives ops CALC calls through a pipelined channel
// over a (possibly lossy) UDP device, returning the raw response
// bodies in op order, the channel stats, and the device's drop count.
func runCalcUDPChannel(t *testing.T, window, ops int, faults runtime.FaultSpec) ([][]byte, runtime.ChannelStats, uint64) {
	t.Helper()
	prog, specs, err := CompileApp(ByName("CALC"), passes.TargetTNA, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[1]
	dev, err := runtime.ServeDevice(runtime.DeviceConfig{
		ID: 1, Addr: "127.0.0.1:0", Prog: prog, Faults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	devClosed := false
	defer func() {
		if !devClosed {
			dev.Close()
		}
	}()
	conn, err := runtime.Dial(runtime.DialConfig{
		ID: 7, Local: "127.0.0.1:0", Device: dev.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := dev.SetNodeAddr(7, conn.Addr()); err != nil {
		t.Fatal(err)
	}
	ch := conn.NewChannel(runtime.ChannelConfig{
		Window: window,
		Reliability: runtime.ReliabilityConfig{
			Timeout: 5 * time.Millisecond, MaxRetries: 32,
		},
	})
	defer ch.Close()
	pend := make([]*runtime.Pending, ops)
	for i := range pend {
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: 7, Dst: 7, Device: 1, Comp: 1}.Header(),
			[][]uint64{{1}, {uint64(i)}, {uint64(1000 + i)}, nil})
		if err != nil {
			t.Fatal(err)
		}
		if pend[i], err = ch.CallAsync(msg); err != nil {
			t.Fatal(err)
		}
	}
	out := make([][]byte, ops)
	for i, p := range pend {
		resp, err := p.Wait(0)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		out[i] = append([]byte(nil), resp...)
	}
	st := ch.Stats()
	devClosed = true
	dev.Close() // joins the device loop, settling the fault counters
	return out, st, dev.FaultDropped
}

// TestCalcUDPChannelChaos is the real-socket counterpart: a pipelined
// channel through a lossy, duplicating UDP device must return the
// byte-identical responses of a stop-and-wait run through a clean one.
func TestCalcUDPChannelChaos(t *testing.T) {
	const ops = 96
	clean, _, _ := runCalcUDPChannel(t, 1, ops, runtime.FaultSpec{})
	chaotic, st, lost := runCalcUDPChannel(t, 16, ops,
		runtime.FaultSpec{LossRate: 0.05, DupRate: 0.02, Seed: 31})
	for i := range clean {
		if string(clean[i]) != string(chaotic[i]) {
			t.Fatalf("op %d response diverged under chaos:\n  %x\n  %x", i, clean[i], chaotic[i])
		}
	}
	// ~200 RNG draws at 5%: a zero-drop run is a broken injector, not
	// bad luck — and any drop can only be recovered by retransmission.
	if lost == 0 {
		t.Error("5%% device loss dropped nothing; injection broken")
	} else if st.Retransmits == 0 {
		t.Errorf("%d packets dropped but nothing retransmitted", lost)
	}
	if st.PeakInFlight < 2 {
		t.Errorf("window 16 never pipelined: peak %d in flight", st.PeakInFlight)
	}
}

// TestRunPaxosUDPUnderLoss is the acceptance case: consensus completes
// under seeded loss at every device on the real-UDP backend.
func TestRunPaxosUDPUnderLoss(t *testing.T) {
	res, err := RunPaxosUDP(PaxosUDPConfig{
		Commands: 6, Target: passes.TargetTNA,
		Faults:            runtime.FaultSpec{LossRate: 0.02, Seed: 23},
		RetransmitTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 6 || res.Undelivered != 0 {
		t.Errorf("delivered %d/6 (%d undelivered)", res.Delivered, res.Undelivered)
	}
	t.Logf("paxos-udp under loss: %s", res.Summary())
}
