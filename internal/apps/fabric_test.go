package apps

import (
	"testing"
)

func TestFabricAggTiers(t *testing.T) {
	// 16 workers, every tier depth: all rounds complete with correct
	// sums, and each added aggregation tier cuts the traffic entering
	// the top tier by its fan-in.
	byTier := map[int]*FabricAggResult{}
	for _, tiers := range []int{1, 2, 3} {
		res, err := RunFabricAgg(FabricAggConfig{Tiers: tiers, Rounds: 4})
		if err != nil {
			t.Fatalf("tiers=%d: %v", tiers, err)
		}
		if res.Completed != res.Expected || res.Mismatches != 0 {
			t.Fatalf("tiers=%d: %d/%d rounds completed, %d mismatches",
				tiers, res.Completed, res.Expected, res.Mismatches)
		}
		if res.RootIngressBytes == 0 {
			t.Fatalf("tiers=%d: no bytes entered the top tier", tiers)
		}
		byTier[tiers] = res
	}
	// Flat: 16 worker packets converge on the root per round. Two-tier:
	// the 4 leaves each forward one partial — a 4× (= leaf fan-in)
	// reduction in root-ingress traffic at equal host count.
	ratio := float64(byTier[1].RootIngressBytes) / float64(byTier[2].RootIngressBytes)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("2-tier root ingress reduction %.2f×, want ≈4× (fan-in): flat=%d hier=%d",
			ratio, byTier[1].RootIngressBytes, byTier[2].RootIngressBytes)
	}
	// Three-tier: the 2 group switches each forward one partial.
	if byTier[3].RootIngressBytes >= byTier[2].RootIngressBytes {
		t.Fatalf("3-tier root ingress %d not below 2-tier %d",
			byTier[3].RootIngressBytes, byTier[2].RootIngressBytes)
	}
}

func TestFabricAggPartitionInvariance(t *testing.T) {
	// The determinism contract across the fabric: partitioned runs
	// (k ∈ {2,4}) produce delivery hash chains identical to the serial
	// run, for both the hierarchical tree and the flat baseline.
	for _, tiers := range []int{2, 3} {
		run := func(parts int) *FabricAggResult {
			res, err := RunFabricAgg(FabricAggConfig{
				Tiers: tiers, Rounds: 4, Partitions: parts, Trace: true,
			})
			if err != nil {
				t.Fatalf("tiers=%d parts=%d: %v", tiers, parts, err)
			}
			if res.Completed != res.Expected || res.Mismatches != 0 {
				t.Fatalf("tiers=%d parts=%d: %d/%d completed, %d mismatches",
					tiers, parts, res.Completed, res.Expected, res.Mismatches)
			}
			return res
		}
		serial := run(0)
		for _, k := range []int{2, 4} {
			pr := run(k)
			if pr.Partitions < 2 {
				t.Fatalf("tiers=%d: asked for %d partitions, got %d", tiers, k, pr.Partitions)
			}
			if pr.TraceHash != serial.TraceHash {
				t.Fatalf("tiers=%d k=%d: trace hash %#x != serial %#x",
					tiers, k, pr.TraceHash, serial.TraceHash)
			}
		}
	}
}

func TestFabricCache(t *testing.T) {
	res, err := RunFabricCache(FabricCacheConfig{
		Racks: 3, Spines: 2, TotalKeys: 32, CachedKeys: 16, RequestsPerClient: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3*64 {
		t.Fatalf("answered %d of %d requests", res.Requests, 3*64)
	}
	if res.WrongValues != 0 {
		t.Fatalf("%d wrong values", res.WrongValues)
	}
	// Uniform key walk over a half-cached universe: hit rate ≈ 50%.
	if res.HitRate < 0.4 || res.HitRate > 0.6 {
		t.Fatalf("hit rate %.2f, want ≈0.5", res.HitRate)
	}
	// Only misses cross the spine; hits reflect at the rack leaf.
	if res.SpineIngressBytes == 0 {
		t.Fatal("no miss traffic crossed the spine")
	}
}

func TestFabricPaxos(t *testing.T) {
	res, err := RunFabricPaxos(FabricPaxosConfig{Commands: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Submitted || res.Undelivered != 0 {
		t.Fatalf("delivered %d of %d commands (%d undelivered)",
			res.Delivered, res.Submitted, res.Undelivered)
	}
	if res.WrongValue != 0 {
		t.Fatalf("%d wrong values", res.WrongValue)
	}
}
