package apps

// hostpath.go measures the pipelined host runtime on the simulator
// backend: a host issues CALC request/response calls through a
// runtime.Channel at several window sizes, so the sweep isolates what
// the sliding window buys over stop-and-wait (window 1) with the
// network model held fixed. Time is simulated time, which makes the
// msgs/sec numbers deterministic and machine-independent; the
// allocation probe runs the same send path against a null transport
// with wall-clock allocations counted.

import (
	"fmt"
	gort "runtime"
	"time"

	"netcl/internal/netsim"
	"netcl/internal/passes"
	"netcl/internal/runtime"
)

// HostpathConfig parameterizes one hostpath run.
type HostpathConfig struct {
	// Window is the channel's sliding-window size (default 1:
	// stop-and-wait).
	Window int
	// Ops is the number of CALC calls (default 512).
	Ops int
	// Faults injects seeded loss/duplication/jitter into the simulated
	// network (zero value = faultless).
	Faults netsim.FaultConfig
	// Target selects the compile target (default TNA).
	Target passes.Target
}

// HostpathResult reports one window size's measurement.
type HostpathResult struct {
	Window        int     `json:"window"`
	Ops           int     `json:"ops"`
	SimDurationNs float64 `json:"sim_duration_ns"`
	// MsgsPerSec is completed calls per second of simulated time.
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	P50Ns        float64 `json:"p50_ns"`
	P99Ns        float64 `json:"p99_ns"`
	Retransmits  uint64  `json:"retransmits"`
	Duplicates   uint64  `json:"duplicates"`
	PeakInFlight int     `json:"peak_in_flight"`
	Mismatches   int     `json:"mismatches"`
	// Results chains every response value so runs can be compared
	// byte-for-byte across window sizes (FNV-1a over the result args).
	Results uint64 `json:"results_hash"`
}

// RunHostpath drives Ops CALC calls through a windowed channel over
// the simulated network and reports throughput and latency in
// simulated time.
func RunHostpath(cfg HostpathConfig) (*HostpathResult, error) {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 512
	}
	prog, specs, err := CompileApp(ByName("CALC"), cfg.Target, 1)
	if err != nil {
		return nil, err
	}
	spec := specs[1]

	n := netsim.NewNetwork()
	n.MaxEvents = 10_000_000
	n.InjectFaults(cfg.Faults)
	dev := n.AddDevice(1, prog)
	host := n.AddHost(7)
	n.Connect(host, dev, 1)
	if err := n.AutoWire(); err != nil {
		return nil, err
	}

	ep := n.NewEndpoint(host, runtime.ReliabilityConfig{
		Timeout: time.Duration(100 * netsim.Microsecond), MaxRetries: 16,
	})
	ch := ep.NewChannel(runtime.ChannelConfig{Window: cfg.Window, Name: "hostpath"})
	defer ch.Close()

	res := &HostpathResult{Window: cfg.Window, Ops: cfg.Ops}
	var hist Hist
	pend := make([]*runtime.Pending, cfg.Ops)
	args := make([]uint64, 1)
	start := n.Now()
	for i := 0; i < cfg.Ops; i++ {
		buf := runtime.GetBuf()
		a, b := uint64(i)&0xffffffff, uint64(3*i+1)&0xffffffff
		args[0] = 1 // OP_ADD
		msg, err := runtime.PackAppend(*buf, spec,
			runtime.Message{Src: 7, Dst: 7, Device: 1, Comp: 1}.Header(),
			[][]uint64{args, {a}, {b}, nil})
		if err == nil {
			*buf = msg
			pend[i], err = ch.CallAsync(msg)
		}
		runtime.PutBuf(buf)
		if err != nil {
			return nil, fmt.Errorf("hostpath: op %d: %w", i, err)
		}
	}
	got := make([]uint64, 1)
	const prime = 1099511628211
	res.Results = 14695981039346656037 // FNV-1a offset basis
	for i, p := range pend {
		resp, err := p.Wait(0)
		if err != nil {
			return nil, fmt.Errorf("hostpath: op %d: %w", i, err)
		}
		if _, err := runtime.UnpackInto(spec, resp, [][]uint64{nil, nil, nil, got}); err != nil {
			return nil, fmt.Errorf("hostpath: op %d: %w", i, err)
		}
		want := (uint64(i) + uint64(3*i+1)) & 0xffffffff
		if got[0] != want {
			res.Mismatches++
		}
		for s := 0; s < 64; s += 8 {
			res.Results ^= (got[0] >> s) & 0xff
			res.Results *= prime
		}
		hist.Record(uint64(p.Latency()))
	}
	res.SimDurationNs = float64(n.Now() - start)
	if res.SimDurationNs > 0 {
		res.MsgsPerSec = float64(cfg.Ops) / (res.SimDurationNs / 1e9)
	}
	res.P50Ns = float64(hist.Quantile(0.50))
	res.P99Ns = float64(hist.Quantile(0.99))
	st := ch.Stats()
	res.Retransmits = st.Retransmits
	res.Duplicates = st.Duplicates
	res.PeakInFlight = st.PeakInFlight
	return res, nil
}

// nullTransport sinks sends instantly: the harness for measuring the
// host send path alone (pack + admit + complete), without a network.
type nullTransport struct{ now time.Duration }

func (t *nullTransport) Send([]byte) error { return nil }
func (t *nullTransport) Recv(time.Duration) ([]byte, error) {
	return nil, runtime.ErrTimeout
}
func (t *nullTransport) Now() time.Duration {
	t.now += time.Microsecond
	return t.now
}

// HostpathSender builds the channel send-path closure used by the
// allocation probe and the benchmark: each call packs one CALC message
// into a pooled buffer, posts it to a window-64 channel over a null
// transport, and completes it. The second return closes the channel.
func HostpathSender() (func(i int) error, func(), error) {
	_, specs, err := CompileApp(ByName("CALC"), passes.TargetTNA, 1)
	if err != nil {
		return nil, nil, err
	}
	spec := specs[1]
	ch := runtime.NewChannel(&nullTransport{}, runtime.ChannelConfig{Window: 64})

	hdr := runtime.Message{Src: 7, Dst: 7, Device: 1, Comp: 1}.Header()
	op := []uint64{1}
	a := []uint64{0}
	b := []uint64{0}
	send := func(i int) error {
		buf := runtime.GetBuf()
		a[0], b[0] = uint64(i), uint64(2*i)
		msg, err := runtime.PackAppend(*buf, spec, hdr, [][]uint64{op, a, b, nil})
		if err == nil {
			*buf = msg
			err = ch.Post(uint64(i), msg)
		}
		runtime.PutBuf(buf)
		if err != nil {
			return err
		}
		ch.Complete(uint64(i))
		return nil
	}
	return send, func() { ch.Close() }, nil
}

// HostpathSendAllocs measures steady-state heap allocations per
// message on the channel send path (pooled pack + Post + Complete)
// over a null transport. The first few iterations warm the buffer
// pool before counting starts.
func HostpathSendAllocs(ops int) (float64, error) {
	if ops <= 0 {
		ops = 4096
	}
	send, closeFn, err := HostpathSender()
	if err != nil {
		return 0, err
	}
	defer closeFn()
	for i := 0; i < 64; i++ { // warm the pool
		if err := send(i); err != nil {
			return 0, err
		}
	}
	var before, after gort.MemStats
	gort.GC()
	gort.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		if err := send(i); err != nil {
			return 0, err
		}
	}
	gort.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(ops), nil
}
