package apps

// slo.go scores a churn timeline the way an operator would read it:
// requests are bucketed into fixed windows of virtual time by issue
// time, each window is "available" when enough of its requests met the
// deadline, and the run splits into three phases around the injected
// event — Baseline (windows fully before the event), During (from the
// event until latency recovers), After (from the recovery window on).
// Recovery is the first window at or after the event's end whose p99
// is back within ε of the baseline p99 and which meets availability;
// the gap between event end and that window is the recovery time.

import (
	"math"
	"sort"
)

// SLOConfig sets the objective a churn scenario is scored against.
type SLOConfig struct {
	// WindowNs is the availability accounting granularity.
	WindowNs float64
	// DeadlineNs is the per-request latency objective; lost requests
	// miss it by definition.
	DeadlineNs float64
	// AvailFrac is the fraction of a window's requests that must meet
	// the deadline for the window to count as available (empty windows
	// are available). Default 0.9.
	AvailFrac float64
	// EpsilonP99 is the recovery tolerance: recovered when a window's
	// p99 ≤ baseline p99 × (1+ε). Default 0.25.
	EpsilonP99 float64
}

// Sample is one scored request: issue time, measured round trip, and
// whether a well-formed response arrived at all (lost requests carry
// OK=false and no RTT).
type Sample struct {
	IssueNs float64
	RTTNs   float64
	OK      bool
}

// PhaseStats summarizes one phase of the timeline.
type PhaseStats struct {
	Windows   int     `json:"windows"`
	Available int     `json:"available_windows"`
	Requests  int     `json:"requests"`
	Met       int     `json:"met_deadline"`
	Lost      int     `json:"lost"`
	P50Ns     float64 `json:"p50_ns"`
	P99Ns     float64 `json:"p99_ns"`
	P999Ns    float64 `json:"p999_ns"`
}

// Availability is the fraction of the phase's windows that met the
// availability bar (1 when the phase has no windows).
func (p *PhaseStats) Availability() float64 {
	if p.Windows == 0 {
		return 1
	}
	return float64(p.Available) / float64(p.Windows)
}

// SLOReport is the scored timeline.
type SLOReport struct {
	Windows      int     `json:"windows"`
	Availability float64 `json:"availability"`

	Baseline PhaseStats `json:"baseline"`
	During   PhaseStats `json:"during"`
	After    PhaseStats `json:"after"`

	BaselineAvailability float64 `json:"baseline_availability"`
	DuringAvailability   float64 `json:"during_availability"`
	AfterAvailability    float64 `json:"after_availability"`

	// Recovered reports whether any post-event window returned within
	// ε of the baseline p99; RecoveryNs is the gap between the event's
	// end and the start of that window (0 = immediate).
	Recovered  bool    `json:"recovered"`
	RecoveryNs float64 `json:"recovery_ns"`
}

// window accumulates one accounting window.
type window struct {
	requests int
	met      int
	lost     int
	rtts     []float64
}

func (w *window) available(cfg SLOConfig) bool {
	if w.requests == 0 {
		return true
	}
	return float64(w.met) >= cfg.AvailFrac*float64(w.requests)
}

// p99 is the window's exact 99th-percentile RTT over responses that
// arrived (+Inf when every request was lost — never "recovered").
func (w *window) p99() float64 {
	if len(w.rtts) == 0 {
		if w.requests > 0 {
			return inf()
		}
		return 0
	}
	sort.Float64s(w.rtts)
	return w.rtts[int(0.99*float64(len(w.rtts)-1))]
}

func inf() float64 { return math.Inf(1) }

// ScoreSLO scores samples against the objective around one event span
// [eventStartNs, eventEndNs). The three phase window counts always sum
// to the total window count, wherever the event lands (the property
// the accounting tests pin).
func ScoreSLO(samples []Sample, eventStartNs, eventEndNs float64, cfg SLOConfig) *SLOReport {
	if cfg.WindowNs <= 0 {
		cfg.WindowNs = 100e3
	}
	if cfg.AvailFrac <= 0 {
		cfg.AvailFrac = 0.9
	}
	if cfg.EpsilonP99 <= 0 {
		cfg.EpsilonP99 = 0.25
	}
	rep := &SLOReport{}
	if len(samples) == 0 {
		rep.Availability = 1
		rep.BaselineAvailability, rep.DuringAvailability, rep.AfterAvailability = 1, 1, 1
		rep.Recovered = true
		return rep
	}

	// Bucket samples into windows by issue time; every window from the
	// first to the last issue exists, even if empty.
	maxIssue := samples[0].IssueNs
	for _, s := range samples {
		if s.IssueNs > maxIssue {
			maxIssue = s.IssueNs
		}
	}
	nw := int(maxIssue/cfg.WindowNs) + 1
	ws := make([]window, nw)
	for _, s := range samples {
		wi := int(s.IssueNs / cfg.WindowNs)
		if wi < 0 {
			wi = 0
		}
		if wi >= nw {
			wi = nw - 1
		}
		w := &ws[wi]
		w.requests++
		if !s.OK {
			w.lost++
			continue
		}
		w.rtts = append(w.rtts, s.RTTNs)
		if s.RTTNs <= cfg.DeadlineNs {
			w.met++
		}
	}
	rep.Windows = nw

	// Baseline: windows fully before the event. Its p99 anchors the
	// recovery test; with no pre-event responses the anchor is +Inf and
	// recovery reduces to the availability bar alone.
	baseEnd := 0 // first window index not fully before the event
	for baseEnd < nw && float64(baseEnd+1)*cfg.WindowNs <= eventStartNs {
		baseEnd++
	}
	baseP99 := inf()
	{
		var rtts []float64
		for i := 0; i < baseEnd; i++ {
			rtts = append(rtts, ws[i].rtts...)
		}
		if len(rtts) > 0 {
			sort.Float64s(rtts)
			baseP99 = rtts[int(0.99*float64(len(rtts)-1))]
		}
	}

	// Recovery: first window starting at/after the event's end that is
	// both available and back within ε of the baseline p99.
	recStart := nw // window index where After begins
	for i := 0; i < nw; i++ {
		if float64(i)*cfg.WindowNs < eventEndNs {
			continue
		}
		if ws[i].available(cfg) && ws[i].p99() <= baseP99*(1+cfg.EpsilonP99) {
			recStart = i
			break
		}
	}
	if recStart < nw {
		rep.Recovered = true
		rep.RecoveryNs = float64(recStart)*cfg.WindowNs - eventEndNs
		if rep.RecoveryNs < 0 {
			rep.RecoveryNs = 0
		}
	}
	if recStart < baseEnd {
		// The whole event span fell inside one baseline window (or the
		// event was empty): keep the phases disjoint.
		recStart = baseEnd
	}

	// Fold windows into phases.
	fold := func(ph *PhaseStats, lo, hi int) {
		var h Hist
		for i := lo; i < hi; i++ {
			w := &ws[i]
			ph.Windows++
			if w.available(cfg) {
				ph.Available++
			}
			ph.Requests += w.requests
			ph.Met += w.met
			ph.Lost += w.lost
			for _, r := range w.rtts {
				h.Record(uint64(r))
			}
		}
		if h.Count() > 0 {
			ph.P50Ns = float64(h.Quantile(0.50))
			ph.P99Ns = float64(h.Quantile(0.99))
			ph.P999Ns = float64(h.Quantile(0.999))
		}
	}
	fold(&rep.Baseline, 0, baseEnd)
	fold(&rep.During, baseEnd, recStart)
	fold(&rep.After, recStart, nw)

	avail := rep.Baseline.Available + rep.During.Available + rep.After.Available
	rep.Availability = float64(avail) / float64(nw)
	rep.BaselineAvailability = rep.Baseline.Availability()
	rep.DuringAvailability = rep.During.Availability()
	rep.AfterAvailability = rep.After.Availability()
	return rep
}
