package apps

import (
	"testing"

	"netcl/internal/passes"
)

// TestAggLossRecovery injects deterministic packet loss on every worker
// link and checks that the SwitchML slot protocol (two slot versions +
// retransmissions, paper §V-E) still aggregates every chunk correctly:
// lost contributions are retransmitted and aggregated once; lost
// completions are recovered by reflecting the stored result.
func TestAggLossRecovery(t *testing.T) {
	for _, lossNth := range []int{7, 13} {
		res, err := RunAgg(AggConfig{
			Workers: 3, Chunks: 20, Window: 2,
			Target:       passes.TargetTNA,
			LossEveryNth: lossNth,
		})
		if err != nil {
			t.Fatalf("loss 1/%d: %v", lossNth, err)
		}
		if res.PacketsLost == 0 {
			t.Fatalf("loss 1/%d: no packets were dropped; injection broken", lossNth)
		}
		if res.Retransmissions == 0 {
			t.Fatalf("loss 1/%d: recovery never retransmitted", lossNth)
		}
		if res.Mismatches != 0 {
			t.Errorf("loss 1/%d: %d aggregation mismatches despite reliability protocol", lossNth, res.Mismatches)
		}
		if res.Completed != 3*20 {
			t.Errorf("loss 1/%d: %d completions, want 60", lossNth, res.Completed)
		}
	}
}

// TestAggLossRecoveryBaseline runs the same failure injection against
// the handwritten P4: the reliability behavior must match.
func TestAggLossRecoveryBaseline(t *testing.T) {
	res, err := RunAgg(AggConfig{
		Workers: 3, Chunks: 12, Window: 2,
		Target:       passes.TargetTNA,
		LossEveryNth: 9,
		Baseline:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsLost == 0 || res.Retransmissions == 0 {
		t.Fatal("no loss/recovery exercised")
	}
	if res.Mismatches != 0 || res.Completed != 36 {
		t.Errorf("baseline recovery failed: %d mismatches, %d completed", res.Mismatches, res.Completed)
	}
}
