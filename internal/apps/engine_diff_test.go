package apps

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
)

// enginePair builds two switches over the same program — one on the
// compiled slot-indexed engine, one on the reference tree-walker — and
// requires the program to actually compile (no silent fallback).
func enginePair(t *testing.T, name string, prog *p4.Program) (fast, slow *bmv2.Switch) {
	t.Helper()
	fast = bmv2.New(prog)
	slow = bmv2.New(prog)
	slow.SetEngine(bmv2.EngineReference)
	if !fast.Compiled() {
		t.Fatalf("%s: compiled engine fell back: %v", name, fast.CompileErr())
	}
	return fast, slow
}

// randMsg packs one wire message with random argument values. The
// first scalar argument (opcode/type in every app) is kept small to
// hit the dispatch branches.
func randMsg(t *testing.T, spec *runtime.MessageSpec, rng *rand.Rand, device uint16) []byte {
	t.Helper()
	args := make([][]uint64, len(spec.Args))
	for i, a := range spec.Args {
		vals := make([]uint64, a.Count)
		mask := uint64(1)<<(uint(a.Bytes)*8) - 1
		if a.Bytes >= 8 {
			mask = ^uint64(0)
		}
		for k := range vals {
			if i == 0 && a.Count == 1 {
				vals[k] = uint64(rng.Intn(8))
			} else {
				vals[k] = rng.Uint64() & mask
			}
		}
		args[i] = vals
	}
	msg, err := runtime.Pack(spec,
		runtime.Message{Src: uint16(rng.Intn(4) + 1), Dst: uint16(rng.Intn(4) + 1),
			Device: device, Comp: spec.Comp}.Header(), args)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

// diffStream feeds an identical packet stream — valid messages, random
// garbage, truncations — to both engines and asserts byte-identical
// results, identical errors, and identical counters.
func diffStream(t *testing.T, name string, fast, slow *bmv2.Switch, spec *runtime.MessageSpec, device uint16, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 250; i++ {
		var pkt []byte
		switch rng.Intn(10) {
		case 0: // random bytes, usually rejected by the parser
			pkt = make([]byte, rng.Intn(40))
			rng.Read(pkt)
		case 1: // truncated valid message
			m := randMsg(t, spec, rng, device)
			pkt = m[:rng.Intn(len(m))]
		default:
			pkt = randMsg(t, spec, rng, device)
		}
		inPort := rng.Intn(4)
		fr, ferr := fast.Process(pkt, inPort)
		sr, serr := slow.Process(pkt, inPort)
		if (ferr == nil) != (serr == nil) ||
			(ferr != nil && ferr.Error() != serr.Error()) {
			t.Fatalf("%s pkt %d: error mismatch: compiled=%v reference=%v", name, i, ferr, serr)
		}
		if ferr != nil {
			continue
		}
		if !bytes.Equal(fr.Data, sr.Data) || fr.Port != sr.Port || fr.Mcast != sr.Mcast ||
			fr.Dropped != sr.Dropped || fr.NoMatch != sr.NoMatch {
			t.Fatalf("%s pkt %d (len %d): compiled %+v != reference %+v", name, i, len(pkt), fr, sr)
		}
	}
	if fast.PacketsIn != slow.PacketsIn || fast.PacketsOut != slow.PacketsOut ||
		fast.PacketsDropped != slow.PacketsDropped {
		t.Fatalf("%s: counters diverged: compiled in/out/drop %d/%d/%d, reference %d/%d/%d",
			name, fast.PacketsIn, fast.PacketsOut, fast.PacketsDropped,
			slow.PacketsIn, slow.PacketsOut, slow.PacketsDropped)
	}
}

// wireFwd installs the same netcl_fwd entries AutoWire would, on both
// switches, so messages route instead of all falling to no-match.
func wireFwd(t *testing.T, sws ...*bmv2.Switch) {
	t.Helper()
	for _, sw := range sws {
		for id := 1; id <= 4; id++ {
			if err := sw.InsertEntry("netcl_fwd", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(id)}},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEngineDifferentialAllApps proves the compiled engine is
// byte-identical to the reference interpreter on every Table III row —
// AGG, CACHE, CALC, PACC, PLRN, PLDR — for both the generated program
// and the handwritten baseline.
func TestEngineDifferentialAllApps(t *testing.T) {
	type row struct {
		name     string
		app      string
		device   uint16
		baseline string // baseline file; "" = skip baseline variant
	}
	rows := []row{
		{"AGG", "AGG", 1, "agg.p4"},
		{"CACHE", "CACHE", 1, "cache.p4"},
		{"CALC", "CALC", 1, "calc.p4"},
		{"PACC", "PAXOS", PaxosAcceptor1, "pacc.p4"},
		{"PLRN", "PAXOS", PaxosLearner, "plrn.p4"},
		{"PLDR", "PAXOS", PaxosLeader, "pldr.p4"},
	}
	for ri, r := range rows {
		app := ByName(r.app)
		gen, specs, err := CompileApp(app, passes.TargetTNA, r.device)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		spec := specs[1]

		progs := []struct {
			label string
			prog  *p4.Program
		}{{r.name + "/generated", gen}}
		src, err := baselineFS.ReadFile("baseline/" + r.baseline)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		bl, err := p4.Parse(r.baseline, string(src))
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		progs = append(progs, struct {
			label string
			prog  *p4.Program
		}{r.name + "/baseline", bl})

		for pi, pr := range progs {
			fast, slow := enginePair(t, pr.label, pr.prog)
			wireFwd(t, fast, slow)
			if r.name == "AGG" && pi == 1 {
				for _, sw := range []*bmv2.Switch{fast, slow} {
					if err := sw.SetDefaultAction("cfg_workers", "set_target", []uint64{AggNumWorkers - 1}); err != nil {
						t.Fatal(err)
					}
				}
			}
			if r.name == "CACHE" {
				cacheEntries(t, pi == 1, fast, slow)
			}
			diffStream(t, pr.label, fast, slow, spec, r.device, int64(0xBEEF+ri*7+pi))
		}
	}
}

// cacheEntries installs a few cached keys (lookup entries + value
// registers) on both switches, mirroring RunCache's control plane, so
// the cache-hit path is exercised.
func cacheEntries(t *testing.T, baseline bool, sws ...*bmv2.Switch) {
	t.Helper()
	idxAction, shareAction := "lu_Index_hit", "lu_Share_hit"
	valReg := func(w int) string { return fmt.Sprintf("reg_Vals__%d", w) }
	validReg := "reg_Valid"
	if baseline {
		idxAction, shareAction = "idx_hit", "share_hit"
		valReg = func(w int) string { return fmt.Sprintf("vals_%02d", w) }
		validReg = "valid_bit"
	}
	for _, sw := range sws {
		for k := 0; k < 4; k++ {
			key, idx := uint64(k+1), uint64(k)
			if err := sw.InsertEntry("lu_Index", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
				Action: &p4.ActionCall{Name: idxAction, Args: []uint64{idx}},
			}); err != nil {
				t.Fatal(err)
			}
			if err := sw.InsertEntry("lu_Share", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
				Action: &p4.ActionCall{Name: shareAction, Args: []uint64{(1 << CacheWords) - 1}},
			}); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < CacheWords; w++ {
				if err := sw.RegisterWrite(valReg(w), int(idx), key*100+uint64(w)); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.RegisterWrite(validReg, int(idx), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
}
