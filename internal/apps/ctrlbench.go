package apps

import (
	"fmt"
	gort "runtime"
	"runtime/debug"
	"sort"
	"time"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/p4rt"
)

// Control-plane benchmark (`nclbench -ctrl`): transactional batch
// throughput against single-op CRUD on a large table, over both the
// in-process client and the TCP wire, plus a "storm" phase measuring
// data-path latency while the control plane churns. The interesting
// properties under test: batch commits amortize the per-write publish
// (and, over TCP, the round trip), and O(delta) snapshots keep a
// 100k-entry table updatable without rebuild stalls on the packet
// path.

// CtrlConfig parameterizes the control-plane benchmark.
type CtrlConfig struct {
	TableEntries int // preloaded exact-table size
	Updates      int // CRUD ops measured per (transport, mode) point
	BatchSize    int // ops per batch in batched mode
	Trials       int // timed repetitions per point; the median is kept
	StormBatches int // batches committed during the storm phase
	StormPackets int // data-path packets processed for baseline p99
}

// CtrlPoint is one (transport, mode) throughput measurement.
type CtrlPoint struct {
	Transport string  `json:"transport"` // "direct" | "tcp"
	Mode      string  `json:"mode"`      // "single" | "batched"
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// CtrlStorm reports data-path latency while the control plane churns:
// a TCP client commits batched updates as fast as it can while the
// data path processes packets against the same table.
type CtrlStorm struct {
	Batches       int     `json:"batches"`
	OpsPerBatch   int     `json:"ops_per_batch"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Packets       int     `json:"packets"`
	QuietP50Us    float64 `json:"quiet_p50_us"` // data path alone
	QuietP99Us    float64 `json:"quiet_p99_us"`
	StormP50Us    float64 `json:"storm_p50_us"` // data path under churn
	StormP99Us    float64 `json:"storm_p99_us"`
}

// CtrlResult is the full control-plane benchmark.
type CtrlResult struct {
	TableEntries int          `json:"table_entries"`
	BatchSize    int          `json:"batch_size"`
	Points       []*CtrlPoint `json:"points"`
	Storm        *CtrlStorm   `json:"storm"`
}

// ctrlProg is a one-table program: an exact match on a 32-bit key,
// preloaded with n entries, applied to every packet.
func ctrlProg(n int) *p4.Program {
	ents := make([]*p4.Entry, n)
	for i := range ents {
		ents[i] = ctrlEntry(uint64(i))
	}
	pp := &p4.Program{Name: "ctrl", Target: p4.TargetTNA}
	pp.Headers = []*p4.HeaderDecl{{Name: "h", Fields: []*p4.Field{
		{Name: "k", Bits: 32},
		{Name: "out", Bits: 32},
	}}}
	pp.Metadata = []*p4.Field{
		{Name: "egress_port", Bits: 16}, {Name: "mcast_grp", Bits: 16}, {Name: "drop_flag", Bits: 1},
	}
	pp.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{
		{Name: "start", Extracts: []string{"h"}, Next: "accept"},
	}}
	ctl := &p4.Control{Name: "In"}
	ctl.Actions = []*p4.ActionDecl{
		{Name: "set_out", Params: []*p4.Field{{Name: "v", Bits: 32}},
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "out"), RHS: p4.FR("v")}}},
		{Name: "miss",
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "out"), RHS: &p4.IntLit{Val: 0xFFFF_FFFF, Bits: 32}}}},
	}
	ctl.Tables = []*p4.Table{
		{Name: "fwd", Keys: []*p4.TableKey{{Expr: p4.FR("hdr", "h", "k"), Match: p4.MatchExact}},
			Actions: []string{"set_out", "miss"}, Default: &p4.ActionCall{Name: "miss"}, Entries: ents},
	}
	ctl.Apply = []p4.Stmt{
		&p4.ApplyTable{Table: "fwd"},
		&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: &p4.IntLit{Val: 1, Bits: 16}},
	}
	pp.Ingress = ctl
	return pp
}

func ctrlEntry(key uint64) *p4.Entry {
	return &p4.Entry{
		Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
		Action: &p4.ActionCall{Name: "set_out", Args: []uint64{key}},
	}
}

// ctrlCRUDSingle runs ops alternating insert/delete one call at a
// time; each call is its own transaction (and, over TCP, its own round
// trip).
func ctrlCRUDSingle(cl p4rt.Client, base uint64, ops int) error {
	for i := 0; i < ops; i++ {
		key := base + uint64(i/2)
		if i%2 == 0 {
			if err := cl.InsertEntry("fwd", ctrlEntry(key)); err != nil {
				return err
			}
		} else if _, err := cl.DeleteEntry("fwd", key); err != nil {
			return err
		}
	}
	return nil
}

// ctrlCRUDBatched runs the same op stream chunked into transactions of
// batchSize ops.
func ctrlCRUDBatched(cl p4rt.Client, base uint64, ops, batchSize int) error {
	b := p4rt.NewWriteBatch()
	for i := 0; i < ops; i++ {
		key := base + uint64(i/2)
		if i%2 == 0 {
			b.Insert("fwd", ctrlEntry(key))
		} else {
			b.Delete("fwd", key)
		}
		if b.Len() >= batchSize {
			if _, err := cl.Write(b); err != nil {
				return err
			}
			b = p4rt.NewWriteBatch()
		}
	}
	if b.Len() > 0 {
		if _, err := cl.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// ctrlPoints measures the single and batched mode of one transport as
// interleaved trial pairs: machine noise (a shared box, a background
// GC) then biases both modes alike instead of whichever mode it
// happened to overlap, so the speedup between the two medians is
// stable run to run. The op stream is insert/delete pairs over a
// private key range, so repeating it is idempotent; the median trial
// damps scheduler and collector noise on small machines.
func ctrlPoints(transport string, ops, trials int, single, batched func() error) (*CtrlPoint, *CtrlPoint, error) {
	secs := map[string][]float64{}
	runs := []struct {
		mode string
		run  func() error
	}{{"single", single}, {"batched", batched}}
	for t := 0; t < trials; t++ {
		for _, r := range runs {
			// Start each trial from a collected heap: path-copied snapshot
			// garbage from the previous one otherwise bleeds GC time into
			// this measurement.
			gort.GC()
			start := time.Now()
			if err := r.run(); err != nil {
				return nil, nil, fmt.Errorf("ctrl %s/%s: %w", transport, r.mode, err)
			}
			secs[r.mode] = append(secs[r.mode], time.Since(start).Seconds())
		}
	}
	point := func(mode string) *CtrlPoint {
		s := secs[mode]
		sort.Float64s(s)
		med := s[len(s)/2]
		return &CtrlPoint{
			Transport: transport, Mode: mode, Ops: ops,
			Seconds: med, OpsPerSec: float64(ops) / med,
		}
	}
	return point("single"), point("batched"), nil
}

// RunCtrl executes the control-plane benchmark.
func RunCtrl(cfg CtrlConfig) (*CtrlResult, error) {
	if cfg.TableEntries <= 0 {
		cfg.TableEntries = 100_000
	}
	if cfg.Updates <= 0 {
		cfg.Updates = 4000
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 5
	}
	if cfg.StormBatches <= 0 {
		cfg.StormBatches = 200
	}
	if cfg.StormPackets <= 0 {
		cfg.StormPackets = 20_000
	}
	// The 100k-entry table keeps tens of MB live; at the default GOGC
	// the collector re-marks that heap every few hundred batches and
	// eats up to a third of the core this benchmark runs on. Relax the
	// GC for the measurement (recorded in the report) so the numbers
	// reflect control-plane cost, not collector cadence.
	prevGC := debug.SetGCPercent(600)
	defer debug.SetGCPercent(prevGC)

	sw := bmv2.New(ctrlProg(cfg.TableEntries))
	if !sw.Compiled() {
		return nil, fmt.Errorf("ctrl: program did not compile: %v", sw.CompileErr())
	}
	direct := &p4rt.Direct{SW: sw}
	srv, err := p4rt.Serve("127.0.0.1:0", direct)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	tcp, err := p4rt.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer tcp.Close()

	res := &CtrlResult{TableEntries: cfg.TableEntries, BatchSize: cfg.BatchSize}
	// Fresh key ranges per point so inserts never collide across modes.
	base := uint64(cfg.TableEntries)
	clients := []struct {
		name string
		cl   p4rt.Client
	}{{"direct", direct}, {"tcp", tcp}}
	for _, c := range clients {
		cl := c.cl
		bs, bb := base, base+uint64(cfg.Updates)
		ps, pb, err := ctrlPoints(c.name, cfg.Updates, cfg.Trials,
			func() error { return ctrlCRUDSingle(cl, bs, cfg.Updates) },
			func() error { return ctrlCRUDBatched(cl, bb, cfg.Updates, cfg.BatchSize) })
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ps, pb)
		base += 2 * uint64(cfg.Updates)
	}

	storm, err := runCtrlStorm(sw, tcp, cfg, base)
	if err != nil {
		return nil, err
	}
	res.Storm = storm
	return res, nil
}

// runCtrlStorm measures the data path quiet, then again while a TCP
// control client commits batched updates continuously.
func runCtrlStorm(sw *bmv2.Switch, cl p4rt.Client, cfg CtrlConfig, base uint64) (*CtrlStorm, error) {
	pkt := []byte{0, 0, 0, 1, 0, 0, 0, 0} // key 1: always resident
	process := func(h *Hist) error {
		t0 := time.Now()
		if _, err := sw.Process(pkt, 0); err != nil {
			return err
		}
		h.Record(uint64(time.Since(t0).Nanoseconds()))
		return nil
	}

	var quiet Hist
	for i := 0; i < cfg.StormPackets; i++ {
		if err := process(&quiet); err != nil {
			return nil, err
		}
	}

	done := make(chan error, 1)
	start := time.Now()
	go func() {
		ops := cfg.StormBatches * cfg.BatchSize
		done <- ctrlCRUDBatched(cl, base, ops, cfg.BatchSize)
	}()
	var storm Hist
	var writerErr error
	stormed := 0
loop:
	for {
		select {
		case writerErr = <-done:
			break loop
		default:
		}
		if err := process(&storm); err != nil {
			return nil, err
		}
		stormed++
	}
	stormSecs := time.Since(start).Seconds()
	if writerErr != nil {
		return nil, fmt.Errorf("ctrl storm writer: %w", writerErr)
	}
	totalOps := cfg.StormBatches * cfg.BatchSize
	return &CtrlStorm{
		Batches: cfg.StormBatches, OpsPerBatch: cfg.BatchSize,
		UpdatesPerSec: float64(totalOps) / stormSecs,
		Packets:       stormed,
		QuietP50Us:    float64(quiet.Quantile(0.50)) / 1e3,
		QuietP99Us:    float64(quiet.Quantile(0.99)) / 1e3,
		StormP50Us:    float64(storm.Quantile(0.50)) / 1e3,
		StormP99Us:    float64(storm.Quantile(0.99)) / 1e3,
	}, nil
}
