package apps

import (
	"testing"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// paxosShoot pushes one message through a single paxos device.
func paxosShoot(t *testing.T, sw *bmv2.Switch, spec *runtime.MessageSpec, args [][]uint64) (*bmv2.Result, [][]uint64, wire.Header) {
	t.Helper()
	msg, err := runtime.Pack(spec, wire.Header{
		Src: 100, Dst: 101, From: wire.None, To: wire.AnyDevice, Comp: 1,
	}, args)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Process(runtime.Frame(msg, 1, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped {
		return res, nil, wire.Header{}
	}
	out, _ := runtime.Deframe(res.Data)
	vals := make([][]uint64, len(spec.Args))
	for i, a := range spec.Args {
		vals[i] = make([]uint64, a.Count)
	}
	hdr, err := runtime.Unpack(spec, out, vals)
	if err != nil {
		t.Fatal(err)
	}
	return res, vals, hdr
}

// TestAcceptorRoundDiscipline: an acceptor accepts rounds >= the
// highest seen per instance and rejects lower ones (Paxos phase 2
// safety).
func TestAcceptorRoundDiscipline(t *testing.T) {
	app := ByName("PAXOS")
	prog, specs, err := CompileApp(app, passes.TargetTNA, PaxosAcceptor1)
	if err != nil {
		t.Fatal(err)
	}
	sw := bmv2.New(prog)
	spec := specs[1]
	vals := func(v uint64) []uint64 {
		out := make([]uint64, 8)
		out[0] = v
		return out
	}
	// Round 5 on instance 3: accepted, 2B multicast.
	res, _, _ := paxosShoot(t, sw, spec, [][]uint64{{2}, {3}, {5}, {0}, {0}, vals(111)})
	if res.Dropped || res.Mcast != 30 {
		t.Fatalf("round 5 should be accepted and multicast to learners (mcast=%d)", res.Mcast)
	}
	// Lower round 3: rejected (dropped).
	res, _, _ = paxosShoot(t, sw, spec, [][]uint64{{2}, {3}, {3}, {0}, {0}, vals(222)})
	if !res.Dropped {
		t.Fatal("stale round must be dropped")
	}
	// Value from round 5 must be preserved.
	v, err := sw.RegisterRead("reg_AccValue__0", 3)
	if err != nil || v != 111 {
		t.Fatalf("accepted value overwritten: %d %v", v, err)
	}
	// Equal round: accepted again (idempotent re-accept).
	res, out, _ := paxosShoot(t, sw, spec, [][]uint64{{2}, {3}, {5}, {0}, {0}, vals(333)})
	if res.Dropped {
		t.Fatal("equal round must be re-accepted")
	}
	if out[0][0] != 3 { // type promoted to PHASE2B
		t.Errorf("type after accept: %d", out[0][0])
	}
	// Higher round supersedes.
	res, _, _ = paxosShoot(t, sw, spec, [][]uint64{{2}, {3}, {9}, {0}, {0}, vals(999)})
	if res.Dropped {
		t.Fatal("higher round must be accepted")
	}
	v, _ = sw.RegisterRead("reg_AccValue__0", 3)
	if v != 999 {
		t.Errorf("higher-round value not stored: %d", v)
	}
	r, _ := sw.RegisterRead("reg_Round", 3)
	if r != 9 {
		t.Errorf("round register: %d", r)
	}
}

// TestLearnerQuorumAndExactlyOnce: two distinct votes deliver once;
// duplicates and later votes do not re-deliver.
func TestLearnerQuorumAndExactlyOnce(t *testing.T) {
	app := ByName("PAXOS")
	prog, specs, err := CompileApp(app, passes.TargetTNA, PaxosLearner)
	if err != nil {
		t.Fatal(err)
	}
	sw := bmv2.New(prog)
	if err := sw.InsertEntry("netcl_fwd", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: 101}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{4}},
	}); err != nil {
		t.Fatal(err)
	}
	spec := specs[1]
	vote := func(mask uint64) [][]uint64 {
		v := make([]uint64, 8)
		v[0] = 4242
		return [][]uint64{{3}, {7}, {0}, {0}, {mask}, v}
	}
	// First vote: stores the value, drops.
	res, _, _ := paxosShoot(t, sw, spec, vote(1))
	if !res.Dropped {
		t.Fatal("first vote should not deliver")
	}
	// Duplicate of the same vote: still no quorum.
	res, _, _ = paxosShoot(t, sw, spec, vote(1))
	if !res.Dropped {
		t.Fatal("duplicate vote should not deliver")
	}
	// Second distinct vote: quorum => deliver to the app host.
	res, out, hdr := paxosShoot(t, sw, spec, vote(2))
	if res.Dropped {
		t.Fatal("quorum should deliver")
	}
	if hdr.Act != wire.ActSendHost || hdr.Dst != 101 {
		t.Errorf("delivery action: act=%d dst=%d", hdr.Act, hdr.Dst)
	}
	if out[0][0] != 4 { // DELIVER
		t.Errorf("delivered type: %d", out[0][0])
	}
	// Third vote: already done, no re-delivery.
	res, _, _ = paxosShoot(t, sw, spec, vote(4))
	if !res.Dropped {
		t.Fatal("third vote must not re-deliver")
	}
	if v, _ := sw.RegisterRead("reg_LrnValue__0", 7); v != 4242 {
		t.Errorf("learned value: %d", v)
	}
}
