package apps

import (
	"testing"

	"netcl/internal/netsim"
)

// netsimScaleCfg is a small instance of the scale scenario: 4 devices,
// a handful of pairs each, every 2nd pair remote so cross-partition
// traffic dominates.
func netsimScaleCfg(partitions int, faults netsim.FaultConfig) NetsimConfig {
	return NetsimConfig{
		Hosts: 4 * 14, Devices: 4, Partitions: partitions, Rounds: 3,
		RemoteEvery: 2, Faults: faults, Trace: true,
	}
}

func TestNetsimScaleCompletes(t *testing.T) {
	res, err := RunNetsimScale(netsimScaleCfg(0, netsim.FaultConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Expected || res.Expected == 0 {
		t.Errorf("completed %d of %d expected slot multicasts", res.Completed, res.Expected)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d aggregation mismatches", res.Mismatches)
	}
	if res.RemotePairs == 0 {
		t.Error("scenario generated no remote pairs")
	}
}

// TestNetsimScalePartitionsMatch: the scenario must produce identical
// delivery hash chains (and counters) at every partition count, with
// and without seeded faults — the scenario-level version of the
// engine's chain test, crossing real multi-hop AGG traffic.
func TestNetsimScalePartitionsMatch(t *testing.T) {
	for _, faults := range []netsim.FaultConfig{
		{},
		{LossRate: 0.05, DupRate: 0.05, JitterNs: 200, Seed: 7},
	} {
		base, err := RunNetsimScale(netsimScaleCfg(1, faults))
		if err != nil {
			t.Fatal(err)
		}
		if base.Completed == 0 {
			t.Fatalf("faults=%+v: nothing completed", faults)
		}
		for _, k := range []int{2, 4} {
			got, err := RunNetsimScale(netsimScaleCfg(k, faults))
			if err != nil {
				t.Fatal(err)
			}
			if got.TraceHash != base.TraceHash || got.Completed != base.Completed ||
				got.Mismatches != base.Mismatches || got.Events != base.Events {
				t.Errorf("faults=%+v k=%d diverged: hash %#x/%#x completed %d/%d mismatches %d/%d events %d/%d",
					faults, k, got.TraceHash, base.TraceHash, got.Completed, base.Completed,
					got.Mismatches, base.Mismatches, got.Events, base.Events)
			}
		}
	}
}

func TestNetsimBaselineBytes(t *testing.T) {
	b, n := BaselineBytesPerHost(1 << 20)
	if n != 65536 {
		t.Errorf("baseline measured %d hosts, want 65536", n)
	}
	if b <= 0 {
		t.Errorf("baseline bytes/host = %f", b)
	}
}
