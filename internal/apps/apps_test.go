package apps

import (
	"testing"

	"netcl/internal/p4c"
	"netcl/internal/passes"
)

// TestAllAppsCompileAndFit compiles every application for both targets
// and checks the TNA artifacts fit a 12-stage Tofino pipe (paper Table
// V: "All applications were able to fit").
func TestAllAppsCompileAndFit(t *testing.T) {
	for _, app := range All() {
		for _, dev := range app.Devices {
			for _, target := range []passes.Target{passes.TargetTNA, passes.TargetV1Model} {
				prog, specs, err := CompileApp(app, target, dev)
				if err != nil {
					t.Fatalf("%s dev %d %s: %v", app.Name, dev, target, err)
				}
				if len(specs) == 0 {
					t.Errorf("%s: no message specs", app.Name)
				}
				if target != passes.TargetTNA {
					continue
				}
				rep := p4c.Fit(prog, p4c.Tofino1())
				if !rep.Fits {
					t.Errorf("%s dev %d does not fit Tofino: %s", app.Name, dev, rep.Reason)
				}
				if rep.LatencyNs >= 1000 {
					t.Errorf("%s dev %d latency %.0fns not below 1us", app.Name, dev, rep.LatencyNs)
				}
			}
		}
	}
}

func TestRunAggSemantics(t *testing.T) {
	for _, target := range []passes.Target{passes.TargetTNA, passes.TargetV1Model} {
		res, err := RunAgg(AggConfig{Workers: 3, Chunks: 16, Window: 2, Target: target})
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if res.Completed != 3*16 {
			t.Errorf("%s: completions %d, want 48", target, res.Completed)
		}
		if res.Mismatches != 0 {
			t.Errorf("%s: %d aggregation mismatches", target, res.Mismatches)
		}
		if res.ATEPerWorker <= 0 {
			t.Errorf("%s: no throughput measured", target)
		}
	}
}

func TestRunCacheSemantics(t *testing.T) {
	// Half the keys cached: hit rate 0.5, no wrong values.
	res, err := RunCache(CacheConfig{CachedKeys: 8, TotalKeys: 16, Requests: 64, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits+res.Misses != 64 {
		t.Fatalf("responses: %d/%d", res.Hits, res.Misses)
	}
	if res.HitRate < 0.45 || res.HitRate > 0.55 {
		t.Errorf("hit rate %.2f, want ~0.5", res.HitRate)
	}
	if res.WrongValues != 0 {
		t.Errorf("%d wrong values returned", res.WrongValues)
	}
	// All-hit must be much faster than all-miss (paper Fig. 14 right).
	hot, err := RunCache(CacheConfig{CachedKeys: 16, TotalKeys: 16, Requests: 32, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunCache(CacheConfig{CachedKeys: 0, TotalKeys: 16, Requests: 32, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if hot.HitRate != 1 || cold.HitRate != 0 {
		t.Fatalf("hit rates: hot %.2f cold %.2f", hot.HitRate, cold.HitRate)
	}
	if hot.MeanResponseNs >= cold.MeanResponseNs {
		t.Errorf("hit RT %.0fns should beat miss RT %.0fns", hot.MeanResponseNs, cold.MeanResponseNs)
	}
	if cold.WrongValues != 0 || hot.WrongValues != 0 {
		t.Errorf("wrong values: hot=%d cold=%d", hot.WrongValues, cold.WrongValues)
	}
}

func TestRunPaxosSemantics(t *testing.T) {
	res, err := RunPaxos(PaxosConfig{Commands: 12, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 12 {
		t.Errorf("delivered %d of %d commands", res.Delivered, res.Submitted)
	}
	if res.WrongValue != 0 {
		t.Errorf("%d deliveries with wrong values", res.WrongValue)
	}
}
