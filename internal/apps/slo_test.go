package apps

// slo_test.go pins the churn SLO scorer: the three phases must
// partition the window axis exactly (their window counts always sum to
// the total, wherever the event lands), and the recovery rule must
// behave at the edges — no post-event windows, all-lost windows,
// empty baselines.

import (
	"math/rand"
	"testing"
)

// TestSLOWindowPartitionProperty: for arbitrary sample sets and
// arbitrary event placement — before, inside, after, or spanning the
// run — Baseline+During+After windows must equal the total window
// count, and the per-phase request/lost tallies must account for every
// sample.
func TestSLOWindowPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := SLOConfig{WindowNs: 10e3, DeadlineNs: 5e3, AvailFrac: 0.9, EpsilonP99: 0.25}
	for trial := 0; trial < 300; trial++ {
		ns := 1 + rng.Intn(120)
		samples := make([]Sample, ns)
		for i := range samples {
			s := Sample{IssueNs: float64(rng.Intn(200_000))}
			if rng.Intn(5) != 0 {
				s.OK = true
				s.RTTNs = float64(100 + rng.Intn(10_000))
			}
			samples[i] = s
		}
		// Event anywhere, including degenerate and out-of-range spans.
		start := float64(rng.Intn(300_000)) - 50_000
		end := start + float64(rng.Intn(60_000))
		rep := ScoreSLO(samples, start, end, cfg)

		if got := rep.Baseline.Windows + rep.During.Windows + rep.After.Windows; got != rep.Windows {
			t.Fatalf("trial %d: phase windows %d+%d+%d != total %d (event [%.0f,%.0f])",
				trial, rep.Baseline.Windows, rep.During.Windows, rep.After.Windows, rep.Windows, start, end)
		}
		if got := rep.Baseline.Requests + rep.During.Requests + rep.After.Requests; got != ns {
			t.Fatalf("trial %d: phase requests sum %d != %d samples", trial, got, ns)
		}
		lost := 0
		for _, s := range samples {
			if !s.OK {
				lost++
			}
		}
		if got := rep.Baseline.Lost + rep.During.Lost + rep.After.Lost; got != lost {
			t.Fatalf("trial %d: phase lost sum %d != %d", trial, got, lost)
		}
		if rep.Availability < 0 || rep.Availability > 1 {
			t.Fatalf("trial %d: availability %v out of range", trial, rep.Availability)
		}
		if rep.Recovered && rep.RecoveryNs < 0 {
			t.Fatalf("trial %d: negative recovery %v", trial, rep.RecoveryNs)
		}
	}
}

// TestSLOPhases pins a hand-built timeline: healthy windows, an event
// window losing everything, then recovery.
func TestSLOPhases(t *testing.T) {
	cfg := SLOConfig{WindowNs: 100, DeadlineNs: 10, AvailFrac: 0.9, EpsilonP99: 0.25}
	var samples []Sample
	// Windows 0-1: healthy. Window 2: all lost. Windows 3-4: healthy.
	for w := 0; w < 5; w++ {
		for i := 0; i < 4; i++ {
			s := Sample{IssueNs: float64(w*100 + i*25)}
			if w != 2 {
				s.OK = true
				s.RTTNs = 8
			}
			samples = append(samples, s)
		}
	}
	rep := ScoreSLO(samples, 200, 300, cfg)
	if rep.Windows != 5 {
		t.Fatalf("windows %d", rep.Windows)
	}
	if rep.Baseline.Windows != 2 || rep.BaselineAvailability != 1 {
		t.Errorf("baseline: %+v", rep.Baseline)
	}
	if rep.During.Windows != 1 || rep.During.Lost != 4 || rep.DuringAvailability != 0 {
		t.Errorf("during: %+v", rep.During)
	}
	if rep.After.Windows != 2 || rep.AfterAvailability != 1 {
		t.Errorf("after: %+v", rep.After)
	}
	if !rep.Recovered || rep.RecoveryNs != 0 {
		t.Errorf("recovery: %v %v", rep.Recovered, rep.RecoveryNs)
	}

	// An all-lost tail never recovers: p99 of a lost-only window is
	// +Inf and the availability bar fails.
	var tail []Sample
	for i := 0; i < 8; i++ {
		s := Sample{IssueNs: float64(i * 25)}
		if i < 4 {
			s.OK = true
			s.RTTNs = 8
		}
		tail = append(tail, s)
	}
	rep = ScoreSLO(tail, 100, 100, cfg)
	if rep.Recovered {
		t.Error("all-lost tail reported recovered")
	}
	if rep.After.Windows != 0 || rep.During.Windows != 1 {
		t.Errorf("tail phases: during %d after %d", rep.During.Windows, rep.After.Windows)
	}

	// Empty input: trivially recovered, all availabilities 1.
	rep = ScoreSLO(nil, 0, 0, cfg)
	if !rep.Recovered || rep.Availability != 1 || rep.Windows != 0 {
		t.Errorf("empty: %+v", rep)
	}
}
