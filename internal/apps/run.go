package apps

import "fmt"

// Result is the uniform driver result: every experiment driver returns
// a value with a one-line Summary, so callers can run any application
// through one entry point and report uniformly.
type Result interface {
	// Summary is a one-line human-readable digest of the run.
	Summary() string
}

// Run executes the experiment driver selected by the config type:
// AggConfig/CacheConfig/PaxosConfig drive the simulated network,
// AggUDPConfig/PaxosUDPConfig the real-UDP backend. Pointer configs
// are accepted too. app may be nil; when given, its name must match
// the application the config drives (a guard against passing, say, a
// CACHE config with the PAXOS app).
func Run(app *App, cfg any) (Result, error) {
	check := func(name string) error {
		if app != nil && app.Name != name {
			return fmt.Errorf("apps: config %T drives %s, but app is %s", cfg, name, app.Name)
		}
		return nil
	}
	switch c := cfg.(type) {
	case AggConfig:
		if err := check("AGG"); err != nil {
			return nil, err
		}
		return RunAgg(c)
	case *AggConfig:
		if err := check("AGG"); err != nil {
			return nil, err
		}
		return RunAgg(*c)
	case AggUDPConfig:
		if err := check("AGG"); err != nil {
			return nil, err
		}
		return RunAggUDP(c)
	case *AggUDPConfig:
		if err := check("AGG"); err != nil {
			return nil, err
		}
		return RunAggUDP(*c)
	case CacheConfig:
		if err := check("CACHE"); err != nil {
			return nil, err
		}
		return RunCache(c)
	case *CacheConfig:
		if err := check("CACHE"); err != nil {
			return nil, err
		}
		return RunCache(*c)
	case PaxosConfig:
		if err := check("PAXOS"); err != nil {
			return nil, err
		}
		return RunPaxos(c)
	case *PaxosConfig:
		if err := check("PAXOS"); err != nil {
			return nil, err
		}
		return RunPaxos(*c)
	case PaxosUDPConfig:
		if err := check("PAXOS"); err != nil {
			return nil, err
		}
		return RunPaxosUDP(c)
	case *PaxosUDPConfig:
		if err := check("PAXOS"); err != nil {
			return nil, err
		}
		return RunPaxosUDP(*c)
	case nil:
		return nil, fmt.Errorf("apps: Run needs a config (AggConfig, CacheConfig, PaxosConfig, AggUDPConfig, or PaxosUDPConfig)")
	default:
		return nil, fmt.Errorf("apps: unsupported config type %T", cfg)
	}
}
