package apps

import (
	"fmt"

	"netcl/internal/codegen"
	"netcl/internal/lang"
	"netcl/internal/lower"
	"netcl/internal/netsim"
	"netcl/internal/p4"
	"netcl/internal/p4rt"
	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/sema"
	"netcl/internal/wire"
)

// CompileApp compiles an application's NetCL source for one device,
// returning the P4 program and its message specs.
func CompileApp(app *App, target passes.Target, device uint16) (*p4.Program, map[uint8]*runtime.MessageSpec, error) {
	var diags lang.Diagnostics
	file := lang.ParseFile(app.Name, app.NetCL, app.Defines, &diags)
	prog := sema.Check(file, &diags)
	if err := diags.Err(); err != nil {
		return nil, nil, err
	}
	mod := lower.Module(prog, device, lower.Options{}, &diags)
	if err := diags.Err(); err != nil {
		return nil, nil, err
	}
	if _, err := passes.Run(mod, passes.DefaultOptions(target)); err != nil {
		return nil, nil, err
	}
	// ECMP is always compiled in for app deployments: the topology
	// route installer spreads flows over equal-cost uplinks, and a
	// program without the spreader cannot take ECMP route entries.
	p4prog, err := codegen.Generate(mod, codegen.Options{Target: p4.Target(target), ECMP: true})
	if err != nil {
		return nil, nil, err
	}
	specs := map[uint8]*runtime.MessageSpec{}
	for comp, kernels := range prog.Computations {
		k := kernels[0]
		spec := &runtime.MessageSpec{Comp: comp}
		ks := k.Spec()
		for i := range ks.Counts {
			spec.Args = append(spec.Args, runtime.ArgSpec{
				Name:  k.Params[i].Name(),
				Bytes: ks.Types[i].Bits() / 8,
				Count: ks.Counts[i],
				Out:   ks.Dirs[i] != sema.ByVal,
			})
		}
		specs[comp] = spec
	}
	return p4prog, specs, nil
}

// loadProgram returns the device program: either compiled from NetCL
// or the handwritten baseline (parsed P4), which share wire formats.
func loadProgram(app *App, target passes.Target, device uint16, baseline bool) (*p4.Program, map[uint8]*runtime.MessageSpec, error) {
	prog, specs, err := CompileApp(app, target, device)
	if err != nil {
		return nil, nil, err
	}
	if !baseline {
		return prog, specs, nil
	}
	src, err := app.Baseline()
	if err != nil {
		return nil, nil, err
	}
	bl, err := p4.Parse(app.Name+"-baseline", src)
	if err != nil {
		return nil, nil, err
	}
	return bl, specs, nil
}

// AggConfig parameterizes the Figure 14 (left) experiment.
type AggConfig struct {
	Workers  int
	Chunks   int // chunks (slots' worth of data) per worker
	Window   int // outstanding slots per worker
	Target   passes.Target
	Baseline bool // run the handwritten P4 instead of generated code
	// LossEveryNth drops every Nth packet on the worker links (0 =
	// lossless); the slot protocol's retransmission path recovers.
	LossEveryNth int
	// Faults injects seeded probabilistic loss/jitter/duplication on
	// every link (zero value = faultless).
	Faults netsim.FaultConfig
	// RetransmitNs is the worker retransmission timeout (default 150µs).
	RetransmitNs netsim.Time
	// RetryBudget bounds retransmissions per chunk (default 64); an
	// exhausted budget aborts the run with an error instead of
	// retransmitting forever.
	RetryBudget int
}

// AggResult reports aggregation throughput.
type AggResult struct {
	// ATEPerWorker is aggregated tensor elements per second per worker
	// (the paper's Fig. 14 metric); under loss this is goodput, since
	// only completed slots count.
	ATEPerWorker float64
	Completed    int
	DurationNs   float64
	Mismatches   int
	// Retransmissions counts worker resends (loss recovery).
	Retransmissions int
	PacketsLost     uint64
	// Duplicates counts completions a worker discarded as already
	// observed (multicast races and duplicated packets).
	Duplicates int
	// MeanChunkNs is the mean first-send-to-completion latency;
	// P50ChunkNs/P99ChunkNs are the median and tail of the same
	// distribution (from a log-linear histogram, ~6% resolution).
	MeanChunkNs float64
	P50ChunkNs  float64
	P99ChunkNs  float64
	// Sim reports the discrete-event engine's work for this run.
	Sim SimStats
}

// Summary implements Result.
func (r *AggResult) Summary() string {
	return fmt.Sprintf("AGG: %d slots completed, %.0f ATE/s per worker, chunk latency p50 %.1fµs p99 %.1fµs, %d mismatches, %d retransmissions, %d packets lost",
		r.Completed, r.ATEPerWorker, r.P50ChunkNs/1e3, r.P99ChunkNs/1e3, r.Mismatches, r.Retransmissions, r.PacketsLost)
}

// RunAgg drives the SwitchML-style aggregation through the simulated
// network: workers stream chunks into slots; the switch reduces and
// multicasts completed slots back.
func RunAgg(cfg AggConfig) (*AggResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Chunks <= 0 {
		cfg.Chunks = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	app := ByName("AGG")
	defines := map[string]uint64{}
	for k, v := range app.Defines {
		defines[k] = v
	}
	defines["NUM_WORKERS"] = uint64(cfg.Workers)
	app = &App{Name: app.Name, NetCL: app.NetCL, Defines: defines,
		Devices: app.Devices, BaselineFile: app.BaselineFile}

	prog, specs, err := loadProgram(app, cfg.Target, 1, cfg.Baseline)
	if err != nil {
		return nil, err
	}
	spec := specs[1]

	if cfg.RetransmitNs == 0 {
		cfg.RetransmitNs = 150 * netsim.Microsecond
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 64
	}
	lossy := cfg.LossEveryNth > 0 || cfg.Faults.Active()
	n := netsim.NewNetwork()
	n.MaxEvents = 10_000_000
	n.InjectFaults(cfg.Faults)
	dev := n.AddDevice(1, prog)
	type workerState struct {
		host        *netsim.Host
		done        int          // completed slots observed
		outstanding map[int]bool // sent chunks awaiting completion
		retries     map[int]int  // retransmissions per chunk
		sentAt      map[int]netsim.Time
	}
	workers := make([]*workerState, cfg.Workers)
	var links []*netsim.Link
	var mcastPorts []int
	for w := 0; w < cfg.Workers; w++ {
		h := n.AddHost(uint16(10 + w))
		l := n.Connect(h, dev, w+1)
		l.DropNth = cfg.LossEveryNth
		links = append(links, l)
		workers[w] = &workerState{host: h, outstanding: map[int]bool{},
			retries: map[int]int{}, sentAt: map[int]netsim.Time{}}
		mcastPorts = append(mcastPorts, w+1)
	}
	if err := n.AutoWire(); err != nil {
		return nil, err
	}
	dev.SetMulticastGroup(42, mcastPorts)
	if cfg.Baseline {
		// The handwritten program takes the worker count from the
		// control plane (a configurable default action), like the real
		// SwitchML deployment.
		if err := dev.SW.SetDefaultAction("cfg_workers", "set_target", []uint64{uint64(cfg.Workers - 1)}); err != nil {
			return nil, err
		}
	}

	res := &AggResult{}
	var chunkHist Hist
	numSlots := int(defines["NUM_SLOTS"])
	slotSize := int(defines["SLOT_SIZE"])
	budgetExceeded := 0

	var sendChunk func(ws *workerState, w int, chunk int, retrans bool)
	sendChunk = func(ws *workerState, w int, chunk int, retrans bool) {
		slot := chunk % cfg.Window
		ver := uint64(chunk/cfg.Window) % 2
		vals := make([]uint64, slotSize)
		for i := range vals {
			vals[i] = uint64(chunk + i + w)
		}
		aggIdx := uint64(slot) + ver*uint64(numSlots)
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: uint16(10 + w), Dst: 100, Device: 1, Comp: 1}.Header(),
			[][]uint64{{ver}, {uint64(slot)}, {aggIdx}, {1 << uint(w)}, {uint64(chunk)}, vals})
		if err != nil {
			return
		}
		ws.outstanding[chunk] = true
		if retrans {
			ws.retries[chunk]++
			res.Retransmissions++
		} else {
			ws.sentAt[chunk] = n.Now()
		}
		ws.host.Send(msg)
		// Retransmission timer: resend while the slot is outstanding
		// (the two-version scheme makes resends safe, §V-E). The retry
		// budget bounds recovery so a partitioned run terminates.
		if lossy {
			n.At(cfg.RetransmitNs, func() {
				if !ws.outstanding[chunk] {
					return
				}
				if ws.retries[chunk] >= cfg.RetryBudget {
					budgetExceeded++
					return
				}
				sendChunk(ws, w, chunk, true)
			})
		}
	}

	for w, ws := range workers {
		w, ws := w, ws
		ws.host.SetReceive(func(h *netsim.Host, msg []byte) {
			ver := make([]uint64, 1)
			slot := make([]uint64, 1)
			vals := make([]uint64, slotSize)
			if _, err := runtime.Unpack(spec, msg, [][]uint64{ver, slot, nil, nil, nil, vals}); err != nil {
				return
			}
			// Identify the chunk from (slot, version): unique among the
			// outstanding window.
			chunk := -1
			for c := range ws.outstanding {
				if uint64(c%cfg.Window) == slot[0] && uint64(c/cfg.Window)%2 == ver[0] {
					chunk = c
					break
				}
			}
			if chunk < 0 {
				res.Duplicates++ // duplicate completion (multicast + reflect)
				return
			}
			delete(ws.outstanding, chunk)
			lat := n.Now() - ws.sentAt[chunk]
			res.MeanChunkNs += float64(lat)
			chunkHist.Record(uint64(lat))
			for i := 0; i < slotSize; i++ {
				want := uint64(cfg.Workers*(chunk+i)) + uint64(cfg.Workers*(cfg.Workers-1)/2)
				if vals[i] != want {
					res.Mismatches++
					break
				}
			}
			ws.done++
			res.Completed++
			// Per-slot self-clocking: reuse this slot only for its own
			// next chunk. This keeps every worker within one slot of
			// the others — the correctness requirement of the
			// alternating-version scheme (§V-E).
			if next := chunk + cfg.Window; next < cfg.Chunks {
				sendChunk(ws, w, next, false)
			}
		})
	}
	// Prime the window.
	for w, ws := range workers {
		for c := 0; c < cfg.Window && c < cfg.Chunks; c++ {
			sendChunk(ws, w, c, false)
		}
	}
	if err := n.RunAll(); err != nil {
		return nil, err
	}
	res.DurationNs = float64(n.Now())
	if res.DurationNs > 0 {
		// Each completed slot aggregates slotSize elements per worker.
		totalPerWorker := float64(res.Completed/cfg.Workers) * float64(slotSize)
		res.ATEPerWorker = totalPerWorker / (res.DurationNs / 1e9)
	}
	if res.Completed > 0 {
		res.MeanChunkNs /= float64(res.Completed)
		res.P50ChunkNs = float64(chunkHist.Quantile(0.50))
		res.P99ChunkNs = float64(chunkHist.Quantile(0.99))
	}
	// Every worker must observe every chunk's completion.
	for _, ws := range workers {
		if ws.done != cfg.Chunks {
			res.Mismatches++
		}
	}
	for _, l := range links {
		res.PacketsLost += l.Dropped
	}
	res.Sim = SimStats{Events: n.Processed, PeakQueue: n.PeakQueue, EventsPerSec: n.EventsPerSec()}
	if budgetExceeded > 0 {
		return res, fmt.Errorf("agg: retry budget (%d) exhausted for %d chunk(s); %d/%d slots completed",
			cfg.RetryBudget, budgetExceeded, res.Completed, cfg.Workers*cfg.Chunks)
	}
	return res, nil
}

// CacheConfig parameterizes the Figure 14 (right) experiment.
type CacheConfig struct {
	CachedKeys int // keys loaded into the switch cache
	TotalKeys  int // key universe (uniform accesses)
	Requests   int
	Target     passes.Target
	Baseline   bool
	// ServerNs is the KVS server's per-request processing time.
	ServerNs netsim.Time
	// Faults injects seeded probabilistic loss/jitter/duplication.
	Faults netsim.FaultConfig
	// RetransmitNs is the client's GET retransmission timeout under
	// faults (default 250µs).
	RetransmitNs netsim.Time
	// RetryBudget bounds retransmissions per request (default 64).
	RetryBudget int
}

// CacheResult reports KVS response times.
type CacheResult struct {
	MeanResponseNs float64
	// P50ResponseNs/P99ResponseNs split the response-time distribution:
	// under partial caching the median is a switch hit while the tail is
	// a server round trip, which the mean alone hides.
	P50ResponseNs float64
	P99ResponseNs float64
	HitRate       float64
	Hits, Misses  int
	WrongValues   int
	// Retransmissions/Duplicates/PacketsLost report the loss-recovery
	// path (GETs are idempotent, so resends are safe).
	Retransmissions int
	Duplicates      int
	PacketsLost     uint64
	// Sim reports the discrete-event engine's work for this run.
	Sim SimStats
}

// Summary implements Result.
func (r *CacheResult) Summary() string {
	return fmt.Sprintf("CACHE: hit rate %.0f%%, mean response %.2fµs, p50 %.2fµs, p99 %.2fµs (%d hits, %d misses, %d wrong values, %d retransmissions)",
		100*r.HitRate, r.MeanResponseNs/1e3, r.P50ResponseNs/1e3, r.P99ResponseNs/1e3, r.Hits, r.Misses, r.WrongValues, r.Retransmissions)
}

// RunCache drives NetCache through the simulated network: a client
// issues GETs over a key universe; the switch answers cached keys and
// forwards misses to the KVS server host.
func RunCache(cfg CacheConfig) (*CacheResult, error) {
	if cfg.TotalKeys <= 0 {
		cfg.TotalKeys = 64
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 256
	}
	if cfg.ServerNs == 0 {
		// Calibrated to the paper's testbed observations: ~27µs mean
		// response when every request misses, ~9.4µs when all hit.
		cfg.ServerNs = 7600 * netsim.Nanosecond
	}
	if cfg.RetransmitNs == 0 {
		cfg.RetransmitNs = 250 * netsim.Microsecond
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 64
	}
	lossy := cfg.Faults.Active()
	app := ByName("CACHE")
	prog, specs, err := loadProgram(app, cfg.Target, 1, cfg.Baseline)
	if err != nil {
		return nil, err
	}
	spec := specs[1]
	words := CacheWords

	n := netsim.NewNetwork()
	n.MaxEvents = 10_000_000
	n.InjectFaults(cfg.Faults)
	dev := n.AddDevice(1, prog)
	client := n.AddHost(1)
	server := n.AddHost(2)
	client.SetProcessingNs(3500 * netsim.Nanosecond)
	n.Connect(client, dev, 1)
	n.Connect(server, dev, 2)
	if err := n.AutoWire(); err != nil {
		return nil, err
	}

	// KVS contents: value word w of key k is k*100+w.
	valueOf := func(key uint64, w int) uint64 { return key*100 + uint64(w) }

	// Operator/controller: install the cached keys through the control
	// plane (managed lookup memory). Generated and handwritten programs
	// expose different object names for the same state.
	cp := &p4rt.Direct{SW: dev.SW}
	idxAction, shareAction := "lu_Index_hit", "lu_Share_hit"
	valReg := func(w int) string { return fmt.Sprintf("reg_Vals__%d", w) }
	validReg := "reg_Valid"
	if cfg.Baseline {
		idxAction, shareAction = "idx_hit", "share_hit"
		valReg = func(w int) string { return fmt.Sprintf("vals_%02d", w) }
		validReg = "valid_bit"
	}
	// The whole cache installs as one transaction: packets start seeing
	// cached keys only when every index entry and value word is in place.
	populate := p4rt.NewWriteBatch()
	for k := 0; k < cfg.CachedKeys && k < cfg.TotalKeys; k++ {
		key := uint64(k + 1)
		idx := uint64(k)
		populate.Insert("lu_Index", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
			Action: &p4.ActionCall{Name: idxAction, Args: []uint64{idx}},
		})
		populate.Insert("lu_Share", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
			Action: &p4.ActionCall{Name: shareAction, Args: []uint64{(1 << uint(words)) - 1}},
		})
		for w := 0; w < words; w++ {
			populate.RegisterWrite(valReg(w), int(idx), valueOf(key, w))
		}
		populate.RegisterWrite(validReg, int(idx), 1)
	}
	if _, err := cp.Write(populate); err != nil {
		return nil, err
	}

	// KVS server: answer misses.
	server.SetProcessingNs(cfg.ServerNs)
	server.SetReceive(func(h *netsim.Host, msg []byte) {
		key := make([]uint64, 1)
		op := make([]uint64, 1)
		hdr, err := runtime.Unpack(spec, msg, [][]uint64{op, key, nil, nil, nil})
		if err != nil || op[0] != 1 {
			return
		}
		vals := make([]uint64, words)
		for w := range vals {
			vals[w] = valueOf(key[0], w)
		}
		// Respond without requesting computation (to = none).
		reply, err := runtime.Pack(spec, wire.Header{
			Src: 2, Dst: hdr.Src, From: wire.None, To: wire.None, Comp: 1,
		}, [][]uint64{op, key, vals, {0}, nil})
		if err != nil {
			return
		}
		h.Send(reply)
	})

	res := &CacheResult{}
	var rtHist Hist
	var totalRT float64
	outstandingKey := uint64(0)
	answered := true
	retries := 0
	budgetExceeded := 0
	var sentAt netsim.Time
	reqSent := 0

	// send transmits one GET; under faults it arms a retransmission
	// timer (GETs are idempotent, so resends are safe).
	var send func(key uint64)
	send = func(key uint64) {
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: 1, Dst: 2, Device: 1, Comp: 1}.Header(),
			[][]uint64{{1}, {key}, nil, nil, nil})
		if err != nil {
			return
		}
		client.Send(msg)
		if lossy {
			n.At(cfg.RetransmitNs, func() {
				if answered || outstandingKey != key {
					return
				}
				if retries >= cfg.RetryBudget {
					budgetExceeded++
					return
				}
				retries++
				res.Retransmissions++
				send(key)
			})
		}
	}
	var issue func()
	issue = func() {
		if reqSent >= cfg.Requests {
			return
		}
		key := uint64(reqSent%cfg.TotalKeys) + 1
		outstandingKey = key
		answered = false
		retries = 0
		sentAt = n.Now()
		reqSent++
		send(key)
	}
	client.SetReceive(func(h *netsim.Host, msg []byte) {
		key := make([]uint64, 1)
		vals := make([]uint64, words)
		hit := make([]uint64, 1)
		if _, err := runtime.Unpack(spec, msg, [][]uint64{nil, key, vals, hit, nil}); err != nil {
			return
		}
		// Match the response to the outstanding GET: late duplicates
		// from retransmitted requests are discarded.
		if answered || key[0] != outstandingKey {
			res.Duplicates++
			return
		}
		answered = true
		totalRT += float64(n.Now() - sentAt)
		rtHist.Record(uint64(n.Now() - sentAt))
		if hit[0] != 0 {
			res.Hits++
		} else {
			res.Misses++
		}
		for w := 0; w < words; w++ {
			if vals[w] != valueOf(outstandingKey, w) {
				res.WrongValues++
				break
			}
		}
		issue()
	})
	issue()
	if err := n.RunAll(); err != nil {
		return nil, err
	}
	done := res.Hits + res.Misses
	if done > 0 {
		res.MeanResponseNs = totalRT / float64(done)
		res.P50ResponseNs = float64(rtHist.Quantile(0.50))
		res.P99ResponseNs = float64(rtHist.Quantile(0.99))
		res.HitRate = float64(res.Hits) / float64(done)
	}
	res.PacketsLost = n.FaultsDropped
	res.Sim = SimStats{Events: n.Processed, PeakQueue: n.PeakQueue, EventsPerSec: n.EventsPerSec()}
	if budgetExceeded > 0 {
		return res, fmt.Errorf("cache: retry budget (%d) exhausted; %d/%d requests answered",
			cfg.RetryBudget, done, cfg.Requests)
	}
	return res, nil
}

// PaxosConfig parameterizes the in-network consensus run.
type PaxosConfig struct {
	Commands int
	Target   passes.Target
	// Faults injects seeded probabilistic loss/jitter/duplication on
	// every link (client, inter-device, and learner links included).
	Faults netsim.FaultConfig
	// RetransmitNs is the client's command retransmission timeout
	// under faults (default 400µs).
	RetransmitNs netsim.Time
	// RetryBudget bounds retransmissions per command (default 32).
	RetryBudget int
}

// PaxosResult reports consensus outcomes.
type PaxosResult struct {
	Submitted  int
	Delivered  int // distinct commands delivered by the learner
	WrongValue int
	// Retries counts client command resends; a resent command is
	// chosen under a fresh instance, so the application-level dedup
	// (by command value) suppresses the extra delivery.
	Retries     int
	Duplicates  int
	Undelivered int
	PacketsLost uint64
}

// Summary implements Result.
func (r *PaxosResult) Summary() string {
	return fmt.Sprintf("PAXOS: %d/%d commands chosen and delivered (%d wrong values, %d retries, %d duplicates)",
		r.Delivered, r.Submitted, r.WrongValue, r.Retries, r.Duplicates)
}

// RunPaxos builds the five-device P4xos topology (leader, three
// acceptors, learner) and submits client commands; the learner
// delivers each chosen command to the application host.
func RunPaxos(cfg PaxosConfig) (*PaxosResult, error) {
	if cfg.Commands <= 0 {
		cfg.Commands = 16
	}
	if cfg.RetransmitNs == 0 {
		cfg.RetransmitNs = 400 * netsim.Microsecond
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 32
	}
	lossy := cfg.Faults.Active()
	app := ByName("PAXOS")

	n := netsim.NewNetwork()
	n.MaxEvents = 10_000_000
	n.InjectFaults(cfg.Faults)
	var specs map[uint8]*runtime.MessageSpec
	devs := map[uint16]*netsim.Device{}
	for _, id := range []uint16{PaxosLeader, PaxosAcceptor1, PaxosAcceptor2, PaxosAcceptor3, PaxosLearner} {
		prog, sp, err := CompileApp(app, cfg.Target, id)
		if err != nil {
			return nil, fmt.Errorf("device %d: %w", id, err)
		}
		specs = sp
		devs[id] = n.AddDevice(id, prog)
	}
	spec := specs[1]

	client := n.AddHost(100)
	appHost := n.AddHost(101)

	// Star-of-stars topology: leader at the center feeding acceptors;
	// acceptors feed the learner.
	n.Connect(client, devs[PaxosLeader], 1)
	n.ConnectDevices(devs[PaxosLeader], 2, devs[PaxosAcceptor1], 1)
	n.ConnectDevices(devs[PaxosLeader], 3, devs[PaxosAcceptor2], 1)
	n.ConnectDevices(devs[PaxosLeader], 4, devs[PaxosAcceptor3], 1)
	n.ConnectDevices(devs[PaxosAcceptor1], 2, devs[PaxosLearner], 1)
	n.ConnectDevices(devs[PaxosAcceptor2], 2, devs[PaxosLearner], 2)
	n.ConnectDevices(devs[PaxosAcceptor3], 2, devs[PaxosLearner], 3)
	n.Connect(appHost, devs[PaxosLearner], 4)
	if err := n.AutoWire(); err != nil {
		return nil, err
	}
	// Multicast groups: leader's acceptor group, acceptors' learner group.
	devs[PaxosLeader].SetMulticastGroup(20, []int{2, 3, 4})
	devs[PaxosAcceptor1].SetMulticastGroup(30, []int{2})
	devs[PaxosAcceptor2].SetMulticastGroup(30, []int{2})
	devs[PaxosAcceptor3].SetMulticastGroup(30, []int{2})

	res := &PaxosResult{}
	delivered := map[uint64]bool{}    // by instance
	deliveredVal := map[uint64]bool{} // by command value (app-level dedup)
	appHost.SetReceive(func(h *netsim.Host, msg []byte) {
		typ := make([]uint64, 1)
		inst := make([]uint64, 1)
		v := make([]uint64, 8)
		if _, err := runtime.Unpack(spec, msg, [][]uint64{typ, inst, nil, nil, nil, v}); err != nil {
			return
		}
		if typ[0] != 4 { // DELIVER
			return
		}
		if delivered[inst[0]] {
			res.Duplicates++
			return // at-most-once per instance
		}
		delivered[inst[0]] = true
		// A retried command is chosen under a fresh instance; the
		// application deduplicates by command value.
		if deliveredVal[v[0]] {
			res.Duplicates++
			return
		}
		deliveredVal[v[0]] = true
		res.Delivered++
		if !lossy && v[0] != 1000+inst[0]-1 {
			res.WrongValue++
		}
	})

	// submit sends command c; under faults it arms a retransmission
	// timer that resends until the learner delivers the value or the
	// retry budget runs out.
	var submit func(c, attempt int)
	submit = func(c, attempt int) {
		val := uint64(1000 + c)
		if deliveredVal[val] {
			return
		}
		if attempt > 0 {
			res.Retries++
		}
		vals := make([]uint64, 8)
		vals[0] = val
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: 100, Dst: 101, Device: PaxosLeader, Comp: 1}.Header(),
			[][]uint64{{1}, {0}, {0}, {0}, {0}, vals})
		if err != nil {
			return
		}
		client.Send(msg)
		if lossy && attempt < cfg.RetryBudget {
			n.At(cfg.RetransmitNs, func() { submit(c, attempt+1) })
		}
	}
	for c := 0; c < cfg.Commands; c++ {
		submit(c, 0)
		res.Submitted++
	}
	if err := n.RunAll(); err != nil {
		return nil, err
	}
	for c := 0; c < cfg.Commands; c++ {
		if !deliveredVal[uint64(1000+c)] {
			res.Undelivered++
		}
	}
	res.PacketsLost = n.FaultsDropped
	if lossy && res.Undelivered > 0 {
		return res, fmt.Errorf("paxos: %d/%d commands undelivered after retry budget (%d)",
			res.Undelivered, cfg.Commands, cfg.RetryBudget)
	}
	return res, nil
}
