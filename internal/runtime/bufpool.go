package runtime

import "sync"

// Pooled message buffers for the zero-alloc host path. A buffer is
// borrowed with GetBuf, filled through PackAppend/Seq.AppendTo, handed
// to a Transport (whose Send must finish with the bytes before
// returning: UDP copies into the kernel, the simulator frames into its
// own packet buffer), and recycled with PutBuf. The sliding-window
// Channel keeps each buffer checked out for as long as the message may
// be retransmitted and recycles it on completion — ownership follows
// the pending-send entry, not the Send call (DESIGN.md §9).

// msgBufCap comfortably holds the largest evaluation-app message
// (header + data + trailer); bigger messages simply grow their buffer
// once and the grown buffer is what returns to the pool.
const msgBufCap = 2048

var msgBufs = sync.Pool{New: func() any { b := make([]byte, 0, msgBufCap); return &b }}

// GetBuf borrows an empty pooled buffer.
func GetBuf() *[]byte {
	b := msgBufs.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer to the pool. The caller must not retain any
// slice of it afterwards.
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) == 0 {
		return
	}
	msgBufs.Put(b)
}
