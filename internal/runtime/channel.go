package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"netcl/internal/metrics"
	"netcl/internal/wire"
)

// Channel is the pipelined reliable channel: where Reliability.confirm
// holds one message in flight per caller (stop-and-wait), a Channel
// keeps a sliding window of up to Window unacknowledged messages in
// flight over the same Transport and the same wire trailer. Pending
// sends live in a fixed per-seq slot table serviced by a single
// retransmission pass sharing one timer: each entry keeps its own
// exponential backoff and retry budget, due entries are resent
// together (batched when the transport supports it), and the earliest
// deadline bounds how long the channel blocks in the transport.
//
// Three completion styles cover the host-side protocols:
//
//   - Call/CallAsync — matched request/response: the entry completes
//     when a message echoing its sequence number arrives (a device
//     reflect carries the trailer back).
//   - SendReliable — fire-and-forget reliable: the entry completes on
//     an explicit acknowledgement from the receiving host.
//   - Post/Complete — application-driven: the entry is retransmitted
//     until the application observes the effect it was waiting for
//     (an AGG slot completion, a Paxos delivery) and calls Complete.
//     This keeps self-clocked protocols correct: the channel owns the
//     timer, backoff and budget, the application owns the semantics
//     of "done".
//
// Receiver-side duplicate suppression uses the same fixed-size
// anti-replay bitmaps as Reliability (see dedup.go) instead of a map.
//
// Like the simulator endpoint it runs over, a Channel is pumped: all
// protocol progress happens inside the caller's Recv/Call/Wait/Drain,
// never on a background goroutine, so it works identically over the
// single-threaded discrete-event transport and over real sockets.
// One goroutine owns those pumping calls; Complete (and Stats) may be
// called from any goroutine.

// ChannelConfig parameterizes a Channel.
type ChannelConfig struct {
	// Window is the maximum number of unacknowledged messages in
	// flight (default 32).
	Window int
	// Reliability carries the shared retransmission knobs: initial
	// per-entry timeout, backoff factor and cap, retry budget, and the
	// dedup window size.
	Reliability ReliabilityConfig
	// Metrics optionally registers the channel's gauges (occupancy,
	// peak in-flight, retransmits) in a shared set under Name.
	Metrics *metrics.Set
	// Name prefixes the gauge names (default "chan").
	Name string
}

// ChannelStats counts channel events. All counters are cumulative.
type ChannelStats struct {
	Sent         uint64 // entries admitted to the window
	Retransmits  uint64 // timeout-driven resends
	Timeouts     uint64 // per-entry attempt expiries
	Completed    uint64 // entries completed successfully
	Failures     uint64 // entries that exhausted the retry budget
	Duplicates   uint64 // inbound duplicates suppressed
	AcksSent     uint64 // acknowledgements emitted
	AcksReceived uint64 // acknowledgements consumed
	Delivered    uint64 // application messages delivered by Recv
	Stray        uint64 // inbound messages matching nothing
	InFlight     int    // current window occupancy
	PeakInFlight int    // highest occupancy observed
}

// entry kinds: how a pending send completes.
const (
	entryCall = iota // inbound message echoing the seq
	entryAck         // explicit acknowledgement
	entryPost        // application calls Complete(token)
)

// pendEntry is one window slot.
type pendEntry struct {
	used     bool
	kind     uint8
	seq      uint32
	token    uint64
	buf      *[]byte // pooled backing store, held until completion
	msg      []byte  // trailered wire message (aliases *buf)
	sentAt   time.Duration
	deadline time.Duration // next retransmission due
	per      time.Duration // current per-attempt timeout
	attempts int           // retransmissions so far
	p        *Pending      // completion observer (Call/SendReliable)
}

// Pending is the completion handle of an asynchronous window entry.
type Pending struct {
	c      *Channel
	done   bool
	err    error
	resp   []byte // Call response body, trailer stripped
	sentAt time.Duration
	doneAt time.Duration
}

// Channel implements the sliding-window protocol over a Transport.
type Channel struct {
	t    Transport
	bt   BatchTransport // non-nil when t batches sends
	br   BufRecver      // non-nil when t receives into caller buffers
	cfg  ChannelConfig
	rcfg ReliabilityConfig

	mu       sync.Mutex
	ents     []pendEntry
	inFlight int
	seq      uint32
	inbox    [][]byte
	dedup    *dedupTable
	closed   bool
	sticky   error // first retry-budget failure, returned by Recv/Drain
	stats    ChannelStats

	scratch []byte   // BufRecver receive buffer (pump-owned)
	sendq   [][]byte // retransmission batch staging

	gaugeInFlight *metrics.Gauge
	gaugeRetrans  *metrics.Gauge
}

// ErrChannelClosed reports use of a closed channel.
var ErrChannelClosed = errors.New("netcl/runtime: channel closed")

// ErrWindowClosed reports a Pending abandoned by Close.
var ErrWindowClosed = errors.New("netcl/runtime: window entry abandoned by Close")

// NewChannel builds a channel over t.
func NewChannel(t Transport, cfg ChannelConfig) *Channel {
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Name == "" {
		cfg.Name = "chan"
	}
	cfg.Reliability = cfg.Reliability.withDefaults()
	set := cfg.Metrics
	if set == nil {
		set = metrics.NewSet()
	}
	c := &Channel{
		t: t, cfg: cfg, rcfg: cfg.Reliability,
		ents:          make([]pendEntry, cfg.Window),
		dedup:         newDedupTable(cfg.Reliability.DedupWindow),
		gaugeInFlight: set.Gauge(cfg.Name + ".inflight"),
		gaugeRetrans:  set.Gauge(cfg.Name + ".retransmits"),
	}
	c.bt, _ = t.(BatchTransport)
	if br, ok := t.(BufRecver); ok {
		c.br = br
		c.scratch = make([]byte, 65536)
	}
	return c
}

// Window returns the configured window size.
func (c *Channel) Window() int { return c.cfg.Window }

// Stats snapshots the counters.
func (c *Channel) Stats() ChannelStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Err returns the sticky error: the first retry-budget failure, if
// any. It is also returned by Recv and Drain.
func (c *Channel) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sticky
}

// Close abandons pending entries and releases their buffers. Pendings
// still being waited on observe ErrWindowClosed.
func (c *Channel) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for i := range c.ents {
		e := &c.ents[i]
		if e.used {
			c.finishLocked(e, nil, ErrWindowClosed)
		}
	}
	return nil
}

// admit blocks (pumping the channel) until a window slot is free, then
// fills it with msg plus a fresh seq trailer in a pooled buffer and
// transmits it. The caller keeps ownership of msg.
func (c *Channel) admit(kind uint8, token uint64, flags uint8, msg []byte, p *Pending) error {
	err := c.pump(0, func() bool { return c.inFlight < len(c.ents) })
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrChannelClosed
	}
	var e *pendEntry
	for i := range c.ents {
		if !c.ents[i].used {
			e = &c.ents[i]
			break
		}
	}
	if e == nil {
		return fmt.Errorf("netcl/runtime: window accounting lost a slot")
	}
	c.seq++
	buf := GetBuf()
	wireMsg := append(*buf, msg...)
	wireMsg = wire.Seq{Seq: c.seq, Flags: flags}.AppendTo(wireMsg)
	*buf = wireMsg
	now := c.t.Now()
	*e = pendEntry{
		used: true, kind: kind, seq: c.seq, token: token,
		buf: buf, msg: wireMsg,
		sentAt: now, per: c.rcfg.Timeout, deadline: now + c.rcfg.Timeout,
		p: p,
	}
	if p != nil {
		p.sentAt = now
	}
	c.inFlight++
	c.stats.Sent++
	c.stats.InFlight = c.inFlight
	if c.inFlight > c.stats.PeakInFlight {
		c.stats.PeakInFlight = c.inFlight
	}
	c.gaugeInFlight.Add(1)
	return c.t.Send(wireMsg)
}

// CallAsync admits msg to the window as a request and returns its
// completion handle; the response is the message echoing the seq.
func (c *Channel) CallAsync(msg []byte) (*Pending, error) {
	p := &Pending{c: c}
	if err := c.admit(entryCall, 0, 0, msg, p); err != nil {
		return nil, err
	}
	return p, nil
}

// Call is the synchronous request/response round trip: CallAsync plus
// Wait. With Window 1 it is exactly the stop-and-wait protocol.
func (c *Channel) Call(msg []byte, timeout time.Duration) ([]byte, error) {
	p, err := c.CallAsync(msg)
	if err != nil {
		return nil, err
	}
	return p.Wait(timeout)
}

// SendReliable admits msg as acknowledged one-way delivery: the entry
// retransmits until the receiving host acks.
func (c *Channel) SendReliable(msg []byte) (*Pending, error) {
	p := &Pending{c: c}
	if err := c.admit(entryAck, 0, wire.SeqFlagWantAck, msg, p); err != nil {
		return nil, err
	}
	return p, nil
}

// Post admits msg under an application token. The entry retransmits on
// the shared timer until the application calls Complete(token) — the
// windowed primitive for self-clocked protocols whose completions are
// application events, not transport events.
func (c *Channel) Post(token uint64, msg []byte) error {
	return c.admit(entryPost, token, 0, msg, nil)
}

// Complete resolves the posted entry carrying token. It is safe from
// any goroutine and reports whether a pending entry matched.
func (c *Channel) Complete(token uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.ents {
		e := &c.ents[i]
		if e.used && e.kind == entryPost && e.token == token {
			c.finishLocked(e, nil, nil)
			return true
		}
	}
	return false
}

// Recv delivers the next application message (dedup applied, trailer
// stripped), pumping the window — retransmissions keep flowing while
// the caller waits. A sticky retry-budget failure is surfaced here
// once the inbox is empty.
func (c *Channel) Recv(timeout time.Duration) ([]byte, error) {
	var deadline time.Duration
	if timeout > 0 {
		deadline = c.t.Now() + timeout
	}
	err := c.pump(deadline, func() bool { return len(c.inbox) > 0 || c.sticky != nil })
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.inbox) > 0 {
		m := c.inbox[0]
		c.inbox = c.inbox[1:]
		c.stats.Delivered++
		return m, nil
	}
	if c.sticky != nil {
		return nil, c.sticky
	}
	return nil, err
}

// Drain pumps until the window is empty (every entry completed or
// failed), then reports the sticky error, if any. timeout 0 waits
// until the retry budgets resolve every entry one way or the other.
func (c *Channel) Drain(timeout time.Duration) error {
	var deadline time.Duration
	if timeout > 0 {
		deadline = c.t.Now() + timeout
	}
	if err := c.pump(deadline, func() bool { return c.inFlight == 0 }); err != nil {
		return err
	}
	return c.Err()
}

// Wait pumps the channel until the entry completes; timeout 0 waits
// until the entry's own retry budget resolves it.
func (p *Pending) Wait(timeout time.Duration) ([]byte, error) {
	c := p.c
	var deadline time.Duration
	if timeout > 0 {
		deadline = c.t.Now() + timeout
	}
	if err := c.pump(deadline, func() bool { return p.done }); err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	return p.resp, nil
}

// Done reports completion without blocking.
func (p *Pending) Done() bool {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	return p.done
}

// Latency is the first-transmission-to-completion time on the
// transport clock (simulated time on the simulator). Valid once Done.
func (p *Pending) Latency() time.Duration {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	return p.doneAt - p.sentAt
}

// externalPoll caps the transport wait while application-completed
// entries are pending: their Complete may arrive from another
// goroutine (e.g. a listener on a different socket), which cannot wake
// a blocked transport receive.
const externalPoll = time.Millisecond

// idlePoll caps the transport wait when nothing is due: pure receive
// loops re-check their deadline at this granularity.
const idlePoll = 100 * time.Millisecond

// pump drives the channel until cond holds (checked under the lock):
// due retransmissions are sent, inbound messages dispatched, and the
// transport wait bounded by the earliest pending deadline. deadline 0
// means no caller deadline.
func (c *Channel) pump(deadline time.Duration, cond func() bool) error {
	for {
		c.mu.Lock()
		if cond() {
			c.mu.Unlock()
			return nil
		}
		if c.closed {
			c.mu.Unlock()
			return ErrChannelClosed
		}
		now := c.t.Now()
		next, hasPost, err := c.serviceLocked(now)
		// The retransmission pass may itself satisfy the condition (an
		// entry failing its budget completes it) — re-check before
		// blocking in the transport.
		done := cond()
		c.mu.Unlock()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		// The transport wait: bounded by the caller deadline, the next
		// retransmission, and the polling caps.
		now = c.t.Now()
		if deadline > 0 && now >= deadline {
			return ErrTimeout
		}
		wait := idlePoll
		if hasPost && externalPoll < wait {
			wait = externalPoll
		}
		if next > 0 && next-now < wait {
			wait = next - now
		}
		if deadline > 0 && deadline-now < wait {
			wait = deadline - now
		}
		if wait <= 0 {
			wait = time.Microsecond
		}
		m, owned, err := c.recv(wait)
		if err != nil {
			if IsTimeout(err) {
				continue
			}
			return err
		}
		c.dispatch(m, owned)
	}
}

// recv pulls one raw message; owned reports whether the caller may
// retain it (scratch-backed receives must be copied before they
// escape).
func (c *Channel) recv(timeout time.Duration) ([]byte, bool, error) {
	if c.br != nil {
		m, err := c.br.RecvBuf(c.scratch, timeout)
		return m, false, err
	}
	m, err := c.t.Recv(timeout)
	return m, true, err
}

// serviceLocked runs the single retransmission pass: every due entry
// backs off and resends (batched), entries over budget fail. It
// returns the earliest pending deadline (0 when the window is empty)
// and whether any application-completed entries remain.
func (c *Channel) serviceLocked(now time.Duration) (next time.Duration, hasPost bool, err error) {
	batch := c.sendq[:0]
	for i := range c.ents {
		e := &c.ents[i]
		if !e.used {
			continue
		}
		if e.deadline <= now {
			c.stats.Timeouts++
			if e.attempts >= c.rcfg.MaxRetries {
				c.finishLocked(e, nil, fmt.Errorf("%w (seq %d, %d attempts)",
					ErrRetryBudget, e.seq, e.attempts+1))
				continue
			}
			e.attempts++
			e.per = nextBackoff(e.per, c.rcfg.Backoff, c.rcfg.MaxTimeout)
			e.deadline = now + e.per
			c.stats.Retransmits++
			c.gaugeRetrans.Add(1)
			batch = append(batch, e.msg)
		}
		if e.used {
			if next == 0 || e.deadline < next {
				next = e.deadline
			}
			if e.kind == entryPost {
				hasPost = true
			}
		}
	}
	c.sendq = batch[:0]
	if len(batch) == 0 {
		return next, hasPost, nil
	}
	if c.bt != nil {
		return next, hasPost, c.bt.SendBatch(batch)
	}
	for _, m := range batch {
		if err := c.t.Send(m); err != nil {
			return next, hasPost, err
		}
	}
	return next, hasPost, nil
}

// dispatch routes one inbound message: acks complete ack entries,
// seq-matched responses complete call entries, WantAck traffic is
// acknowledged, duplicates are suppressed, and everything else is
// delivered to the inbox. owned marks messages the channel may retain
// without copying.
func (c *Channel) dispatch(m []byte, owned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, sq, ok := wire.ParseSeq(m)
	if !ok {
		// Untrailered traffic passes through to the application.
		c.deliverLocked(m, owned)
		return
	}
	if sq.Flags&wire.SeqFlagAck != 0 {
		c.stats.AcksReceived++
		if e := c.entryLocked(sq.Seq); e != nil && e.kind == entryAck {
			c.finishLocked(e, nil, nil)
		}
		return
	}
	if sq.Flags&wire.SeqFlagWantAck != 0 {
		// Acknowledge every copy: the previous ack may be the one that
		// was lost. Dedup below decides whether to deliver.
		c.ackLocked(body, sq.Seq)
	}
	if e := c.entryLocked(sq.Seq); e != nil && e.kind == entryCall {
		// The response: record it in the dedup window so duplicate
		// responses to retransmitted requests are suppressed later.
		if len(body) >= wire.HeaderBytes {
			c.observeLocked(body, sq.Seq)
		}
		resp := body
		if !owned {
			resp = append(make([]byte, 0, len(body)), body...)
		}
		c.finishLocked(e, resp, nil)
		return
	}
	if len(body) >= wire.HeaderBytes && c.observeLocked(body, sq.Seq) {
		c.stats.Duplicates++
		return
	}
	c.deliverLocked(body, owned)
}

// entryLocked finds the pending entry carrying seq.
func (c *Channel) entryLocked(seq uint32) *pendEntry {
	for i := range c.ents {
		if c.ents[i].used && c.ents[i].seq == seq {
			return &c.ents[i]
		}
	}
	return nil
}

// observeLocked records (src, seq) of a data message in the
// anti-replay window and reports whether it was already seen.
func (c *Channel) observeLocked(body []byte, seq uint32) bool {
	src := uint16(body[0])<<8 | uint16(body[1])
	return c.dedup.observe(src, seq)
}

// deliverLocked queues one application message, copying scratch-backed
// bytes into an owned buffer.
func (c *Channel) deliverLocked(body []byte, owned bool) {
	if !owned {
		body = append(make([]byte, 0, len(body)), body...)
	}
	c.inbox = append(c.inbox, body)
}

// ackLocked emits an acknowledgement from a pooled scratch buffer.
func (c *Channel) ackLocked(body []byte, seq uint32) {
	buf := GetBuf()
	defer PutBuf(buf)
	out, ok := appendAck(*buf, body, seq)
	if !ok {
		return
	}
	*buf = out
	if err := c.t.Send(out); err == nil {
		c.stats.AcksSent++
	}
}

// finishLocked resolves an entry: the pooled send buffer recycles, the
// slot frees, and any Pending observes the outcome.
func (c *Channel) finishLocked(e *pendEntry, resp []byte, err error) {
	if err != nil {
		c.stats.Failures++
		if c.sticky == nil && !errors.Is(err, ErrWindowClosed) {
			c.sticky = err
		}
	} else {
		c.stats.Completed++
	}
	if p := e.p; p != nil {
		p.done = true
		p.err = err
		p.resp = resp
		p.doneAt = c.t.Now()
	}
	PutBuf(e.buf)
	*e = pendEntry{}
	c.inFlight--
	c.stats.InFlight = c.inFlight
	c.gaugeInFlight.Add(-1)
}
