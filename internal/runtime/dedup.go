package runtime

// Receiver-side duplicate suppression as a fixed-size sequence bitmap
// (the DTLS/IPsec anti-replay scheme) instead of a map plus eviction
// slice: per source, a sliding window of the last W sequence numbers
// is one []uint64 bitmap anchored at the highest sequence seen.
// Observing a sequence is O(1) with no allocation in steady state —
// advancing the anchor shifts the bitmap, membership is a bit test —
// and the serial-number comparison int32(seq-top) keeps the window
// well-defined across uint32 wraparound.

// seqWindow is the anti-replay window for one source.
type seqWindow struct {
	bits []uint64 // bit i (counted from top) set = top-i was seen
	top  uint32   // highest sequence observed, valid once seeded
	seen bool     // false until the first observation
}

// observe records seq and reports whether it was already seen. A
// sequence older than the window is reported as a duplicate: the
// window is the receiver's entire memory, and a sender whose
// retransmission budget is far smaller than the window can never
// legitimately deliver that late.
func (w *seqWindow) observe(seq uint32) bool {
	size := uint32(len(w.bits) * 64)
	if !w.seen {
		w.seen = true
		w.top = seq
		w.bits[0] = 1
		return false
	}
	d := int32(seq - w.top) // serial-number distance, wrap-safe
	switch {
	case d > 0:
		w.shift(uint32(d))
		w.top = seq
		w.bits[0] |= 1
		return false
	case uint32(-d) >= size:
		return true // beyond the window: treat as replayed
	default:
		off := uint32(-d)
		word, bit := off/64, off%64
		dup := w.bits[word]&(1<<bit) != 0
		w.bits[word] |= 1 << bit
		return dup
	}
}

// shift slides the window forward by n sequence numbers (towards
// higher seqs), dropping the oldest bits.
func (w *seqWindow) shift(n uint32) {
	if n >= uint32(len(w.bits)*64) {
		for i := range w.bits {
			w.bits[i] = 0
		}
		return
	}
	words, bits := int(n/64), n%64
	for i := len(w.bits) - 1; i >= 0; i-- {
		var v uint64
		if i-words >= 0 {
			v = w.bits[i-words] << bits
			if bits > 0 && i-words-1 >= 0 {
				v |= w.bits[i-words-1] >> (64 - bits)
			}
		}
		w.bits[i] = v
	}
}

// dedupTable maps sources to their anti-replay windows. The number of
// sources is the number of peers (workers, devices reflecting
// requests), so the map stays tiny and allocates once per source.
type dedupTable struct {
	words int
	srcs  map[uint16]*seqWindow
}

func newDedupTable(window int) *dedupTable {
	words := (window + 63) / 64
	if words < 1 {
		words = 1
	}
	return &dedupTable{words: words, srcs: map[uint16]*seqWindow{}}
}

// observe records (src, seq) and reports whether it was already seen.
func (t *dedupTable) observe(src uint16, seq uint32) bool {
	w := t.srcs[src]
	if w == nil {
		w = &seqWindow{bits: make([]uint64, t.words)}
		t.srcs[src] = w
	}
	return w.observe(seq)
}
