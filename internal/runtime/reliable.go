package runtime

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"netcl/internal/wire"
)

// The reliability layer: per-message sequence numbers, ack/retransmit
// with exponential backoff and a bounded retry budget, and
// receiver-side duplicate suppression. It runs entirely on the end
// hosts — devices forward the seq trailer untouched (see wire/seq.go)
// — so device-side idempotency is preserved: a kernel may observe a
// retransmitted message, but the receiving host delivers it to the
// application at most once.

// ErrTimeout reports that no message arrived within the deadline.
var ErrTimeout = errors.New("netcl/runtime: receive timeout")

// ErrRetryBudget reports that a reliable operation exhausted its
// retransmission budget without confirmation.
var ErrRetryBudget = errors.New("netcl/runtime: retry budget exhausted")

// ReliabilityConfig carries the reliability knobs. The zero value
// selects the defaults below.
type ReliabilityConfig struct {
	// Timeout is the initial per-attempt retransmission timeout
	// (default 20ms wall clock; interpreted as simulated time on the
	// simulator backend).
	Timeout time.Duration
	// MaxRetries bounds retransmissions per message (default 8;
	// negative disables retransmission entirely).
	MaxRetries int
	// Backoff multiplies the timeout after every failed attempt
	// (default 2.0).
	Backoff float64
	// MaxTimeout caps the backed-off per-attempt timeout (default 1s).
	MaxTimeout time.Duration
	// DedupWindow is how many (source, seq) pairs the receiver
	// remembers for duplicate suppression (default 1024).
	DedupWindow int
}

func (c ReliabilityConfig) withDefaults() ReliabilityConfig {
	if c.Timeout <= 0 {
		c.Timeout = 20 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff < 1 {
		c.Backoff = 2
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Second
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 1024
	}
	return c
}

// RelStats counts reliability-layer events.
type RelStats struct {
	Sent          uint64 // reliable messages sent (first transmissions)
	Retransmits   uint64 // timeout-driven resends
	Timeouts      uint64 // attempts that expired unanswered
	Duplicates    uint64 // inbound duplicates suppressed
	AcksSent      uint64 // acknowledgements emitted
	AcksReceived  uint64 // acknowledgements consumed
	Failures      uint64 // operations that exhausted the retry budget
	StrayMessages uint64 // unmatched inbound messages discarded mid-call
}

// relCounters is RelStats sharded onto atomics, so counting never
// touches the dedup mutex and concurrent endpoint workers do not
// serialize on statistics.
type relCounters struct {
	sent, retransmits, timeouts, duplicates atomic.Uint64
	acksSent, acksReceived                  atomic.Uint64
	failures, strayMessages                 atomic.Uint64
}

// snapshot loads a plain RelStats view.
func (c *relCounters) snapshot() RelStats {
	return RelStats{
		Sent:          c.sent.Load(),
		Retransmits:   c.retransmits.Load(),
		Timeouts:      c.timeouts.Load(),
		Duplicates:    c.duplicates.Load(),
		AcksSent:      c.acksSent.Load(),
		AcksReceived:  c.acksReceived.Load(),
		Failures:      c.failures.Load(),
		StrayMessages: c.strayMessages.Load(),
	}
}

// Reliability implements the policy over any Transport. It is safe for
// concurrent use.
type Reliability struct {
	cfg ReliabilityConfig

	seq   atomic.Uint32
	stats relCounters

	mu    sync.Mutex // guards dedup only
	dedup *dedupTable
}

// NewReliability builds a reliability policy instance.
func NewReliability(cfg ReliabilityConfig) *Reliability {
	cfg = cfg.withDefaults()
	return &Reliability{cfg: cfg, dedup: newDedupTable(cfg.DedupWindow)}
}

// Config returns the effective (default-filled) configuration.
func (r *Reliability) Config() ReliabilityConfig { return r.cfg }

// Stats returns a snapshot of the counters.
func (r *Reliability) Stats() RelStats { return r.stats.snapshot() }

// NextSeq allocates a sequence number.
func (r *Reliability) NextSeq() uint32 { return r.seq.Add(1) }

// isDup records (src, seq) in the anti-replay window and reports
// whether it was already seen.
func (r *Reliability) isDup(src uint16, seq uint32) bool {
	r.mu.Lock()
	dup := r.dedup.observe(src, seq)
	r.mu.Unlock()
	if dup {
		r.stats.duplicates.Add(1)
	}
	return dup
}

// IsTimeout classifies transport receive errors: timeouts are retried
// (or treated as "no message yet" by polling receivers), anything else
// aborts the operation.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Call implements reliable request/response: send msg with a fresh
// seq, await a message echoing that seq (a device reflect carries the
// trailer back automatically; a host responder acks), retransmitting
// with exponential backoff. timeout overrides the configured initial
// per-attempt timeout when positive.
func (r *Reliability) Call(t Transport, msg []byte, timeout time.Duration) ([]byte, error) {
	seq := r.NextSeq()
	req := wire.Seq{Seq: seq}.Append(msg)
	body, err := r.confirm(t, req, seq, timeout, false)
	return body, err
}

// SendReliable implements reliable one-way delivery: the trailer asks
// the receiving host for an acknowledgement and the message is
// retransmitted until it arrives. The receiver's Recv suppresses the
// duplicates, so the application observes the message once.
func (r *Reliability) SendReliable(t Transport, msg []byte, timeout time.Duration) error {
	seq := r.NextSeq()
	req := wire.Seq{Seq: seq, Flags: wire.SeqFlagWantAck}.Append(msg)
	_, err := r.confirm(t, req, seq, timeout, true)
	return err
}

// confirm transmits req until a message matching seq arrives. ackOnly
// restricts matches to explicit acknowledgements.
func (r *Reliability) confirm(t Transport, req []byte, seq uint32, timeout time.Duration, ackOnly bool) ([]byte, error) {
	per := r.cfg.Timeout
	if timeout > 0 {
		per = timeout
	}
	r.stats.sent.Add(1)
	for attempt := 0; attempt <= r.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			r.stats.retransmits.Add(1)
		}
		if err := t.Send(req); err != nil {
			return nil, err
		}
		deadline := t.Now() + per
		for {
			rem := deadline - t.Now()
			if rem <= 0 {
				break
			}
			m, err := t.Recv(rem)
			if err != nil {
				if IsTimeout(err) {
					break
				}
				return nil, err
			}
			body, sq, ok := wire.ParseSeq(m)
			if !ok {
				// Untrailered traffic is not ours to consume here.
				r.stats.strayMessages.Add(1)
				continue
			}
			if sq.Flags&wire.SeqFlagWantAck != 0 {
				// A peer's one-way message racing our call: ack it so
				// the peer can make progress, and let dedup decide
				// whether a later Recv should still deliver it.
				r.ack(t, body, sq.Seq)
			}
			if sq.Seq != seq {
				r.stats.strayMessages.Add(1)
				continue
			}
			if sq.Flags&wire.SeqFlagAck != 0 {
				r.stats.acksReceived.Add(1)
				if ackOnly {
					return nil, nil
				}
				continue // ack of the request; keep waiting for data
			}
			if ackOnly {
				continue
			}
			// Suppress duplicate responses to retransmitted requests.
			if len(body) >= wire.HeaderBytes {
				src := uint16(body[0])<<8 | uint16(body[1])
				if r.isDup(src, sq.Seq) {
					continue
				}
			}
			return body, nil
		}
		r.stats.timeouts.Add(1)
		per = nextBackoff(per, r.cfg.Backoff, r.cfg.MaxTimeout)
	}
	r.stats.failures.Add(1)
	return nil, fmt.Errorf("%w (seq %d, %d attempts)", ErrRetryBudget, seq, r.cfg.MaxRetries+1)
}

// Recv delivers the next application message: acknowledgements are
// consumed, ack requests are answered, duplicates are suppressed, and
// the trailer is stripped. Messages without a trailer pass through
// unchanged, preserving pre-reliability behavior.
func (r *Reliability) Recv(t Transport, timeout time.Duration) ([]byte, error) {
	var deadline time.Duration
	if timeout > 0 {
		deadline = t.Now() + timeout
	}
	for {
		rem := timeout
		if timeout > 0 {
			rem = deadline - t.Now()
			if rem <= 0 {
				return nil, ErrTimeout
			}
		}
		m, err := t.Recv(rem)
		if err != nil {
			return nil, err
		}
		body, sq, ok := wire.ParseSeq(m)
		if !ok {
			return m, nil
		}
		if sq.Flags&wire.SeqFlagAck != 0 {
			r.stats.acksReceived.Add(1)
			continue
		}
		if sq.Flags&wire.SeqFlagWantAck != 0 {
			// Acknowledge every copy: the previous ack may be the one
			// that was lost.
			r.ack(t, body, sq.Seq)
		}
		if len(body) >= wire.HeaderBytes {
			src := uint16(body[0])<<8 | uint16(body[1])
			if r.isDup(src, sq.Seq) {
				continue
			}
		}
		return body, nil
	}
}

// ack echoes msg back to its source as an acknowledgement of seq: the
// header's src/dst are swapped and to is cleared so transit devices
// forward it without invoking kernels. The ack is built in a pooled
// scratch buffer — both backends are done with the bytes when Send
// returns, so the buffer recycles immediately and the steady-state ack
// path allocates nothing.
func (r *Reliability) ack(t Transport, body []byte, seq uint32) {
	buf := GetBuf()
	defer PutBuf(buf)
	out, ok := appendAck(*buf, body, seq)
	if !ok {
		return
	}
	*buf = out
	if err := t.Send(out); err == nil {
		r.stats.acksSent.Add(1)
	}
}

// appendAck builds the acknowledgement of (body, seq) at the end of
// dst: body's header with src/dst swapped and transit fields cleared,
// body's data, and an ack trailer.
func appendAck(dst, body []byte, seq uint32) ([]byte, bool) {
	var hdr wire.Header
	rest, ok := hdr.Unmarshal(body)
	if !ok {
		return dst, false
	}
	hdr.Src, hdr.Dst = hdr.Dst, hdr.Src
	hdr.From, hdr.To = wire.None, wire.None
	hdr.Act = wire.ActPass
	out := hdr.Marshal(dst)
	out = append(out, rest...)
	return wire.Seq{Seq: seq, Flags: wire.SeqFlagAck}.AppendTo(out), true
}

// nextBackoff advances a per-attempt timeout by the backoff factor,
// capped at max.
func nextBackoff(per time.Duration, factor float64, max time.Duration) time.Duration {
	per = time.Duration(float64(per) * factor)
	if per > max {
		per = max
	}
	return per
}

// FaultSpec injects probabilistic faults into the real-UDP backend for
// chaos testing: datagrams are dropped or duplicated with the given
// rates, driven by a seeded RNG so runs are reproducible. The
// simulator backend has its own richer injector (netsim.FaultConfig).
type FaultSpec struct {
	// LossRate is the per-datagram drop probability (applied to both
	// inbound and outbound traffic of a device).
	LossRate float64
	// DupRate is the per-datagram duplication probability.
	DupRate float64
	// Seed seeds the injector's RNG (0 = a fixed default seed).
	Seed int64
}

func (f FaultSpec) active() bool { return f.LossRate > 0 || f.DupRate > 0 }

// faultInjector is the seeded RNG behind FaultSpec decisions. The
// stream is a splitmix64 counter generator advanced with one atomic
// add, so concurrent device workers draw decisions without sharing a
// lock (and without touching the global math/rand source); for a fixed
// seed the serial decision sequence is reproducible.
type faultInjector struct {
	state atomic.Uint64
	spec  FaultSpec
}

func newFaultInjector(spec FaultSpec) *faultInjector {
	if !spec.active() {
		return nil
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	f := &faultInjector{spec: spec}
	f.state.Store(uint64(seed))
	return f
}

// next draws a uniform value in [0, 1).
func (f *faultInjector) next() float64 {
	z := f.state.Add(0x9E3779B97F4A7C15) // splitmix64
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// drop decides whether to drop one datagram.
func (f *faultInjector) drop() bool {
	if f == nil {
		return false
	}
	return f.next() < f.spec.LossRate
}

// dup decides whether to duplicate one datagram.
func (f *faultInjector) dup() bool {
	if f == nil {
		return false
	}
	return f.next() < f.spec.DupRate
}
