package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"netcl/internal/passes"
	"netcl/internal/testutil"
	"netcl/internal/wire"
)

// counterFlowKey extracts the CounterKernel's slot argument (the flow
// identity: two messages for the same slot touch the same register
// cell) from a framed packet.
func counterFlowKey(pkt []byte) uint64 {
	off := FrameOverhead + wire.HeaderBytes
	if len(pkt) < off+4 {
		return 0
	}
	return uint64(pkt[off])<<24 | uint64(pkt[off+1])<<16 |
		uint64(pkt[off+2])<<8 | uint64(pkt[off+3])
}

// TestUDPDeviceWorkers runs the UDP device with a flow-sharded worker
// pool: concurrent hosts hammer disjoint counter slots while the
// control plane reads registers (quiescing the workers) mid-traffic.
// Per-slot counts must come out exact — the shard-by-flow invariant
// over real sockets.
func TestUDPDeviceWorkers(t *testing.T) {
	prog, mod, err := testutil.CompileOne(testutil.CounterKernel, passes.TargetTNA, 5)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ServeDevice(DeviceConfig{
		ID: 5, Addr: "127.0.0.1:0", Prog: prog,
		Workers: 4, QueueDepth: 64, FlowKey: counterFlowKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if st := dev.Stats(); st.Workers != 4 {
		t.Fatalf("device reports %d workers, want 4", st.Workers)
	}

	spec := &MessageSpec{Comp: 1, Args: []ArgSpec{
		{Name: "slot", Bytes: 4, Count: 1},
		{Name: "count", Bytes: 4, Count: 1, Out: true},
	}}

	const hosts, perHost = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, hosts)
	for h := 0; h < hosts; h++ {
		host, err := DialUDP(uint16(1+h), "127.0.0.1:0", dev.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer host.Close()
		if err := dev.SetNodeAddr(uint16(1+h), host.Addr()); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(host *HostConn, slot uint64) {
			defer wg.Done()
			for i := 1; i <= perHost; i++ {
				err := host.SendMessage(spec,
					Message{Src: host.ID, Dst: 2, Device: 5, Comp: 1},
					[][]uint64{{slot}, nil})
				if err != nil {
					errs <- err
					return
				}
				count := make([]uint64, 1)
				if _, err := host.RecvMessage(spec, [][]uint64{nil, count}, 2*time.Second); err != nil {
					errs <- fmt.Errorf("slot %d msg %d: %w", slot, i, err)
					return
				}
				if count[0] != uint64(i) {
					errs <- fmt.Errorf("slot %d msg %d: count %d", slot, i, count[0])
					return
				}
			}
		}(host, uint64(h))
	}

	// Control-plane reads while traffic is in flight exercise the
	// quiesce barrier under load.
	conn := &DeviceConnection{CP: dev, Mems: mod.Mems}
	for i := 0; i < 10; i++ {
		if _, err := conn.ManagedRead("hits", []int{i % hosts}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for h := 0; h < hosts; h++ {
		v, err := conn.ManagedRead("hits", []int{h})
		if err != nil {
			t.Fatal(err)
		}
		if v != perHost {
			t.Errorf("hits[%d] = %d, want %d", h, v, perHost)
		}
	}
	if st := dev.Stats(); st.Processed != hosts*perHost {
		t.Errorf("processed %d, want %d (queuefull %d)", st.Processed, hosts*perHost, st.QueueFull)
	}
}
