package runtime

import (
	"time"

	"netcl/internal/wire"
)

// Endpoint is the backend-agnostic host-side messaging surface: the
// real-UDP HostConn and the simulator's host endpoint both implement
// it, so application code and the reliability policy do not care which
// substrate carries the messages.
type Endpoint interface {
	// Send transmits one NetCL message, fire-and-forget.
	Send(msg []byte) error
	// Recv waits up to timeout for one inbound message. Duplicate
	// retransmissions are suppressed and the reliability trailer, if
	// present, is stripped.
	Recv(timeout time.Duration) ([]byte, error)
	// Call sends msg with a fresh sequence number and waits for the
	// response carrying it, retransmitting with exponential backoff
	// within the endpoint's retry budget. timeout overrides the
	// configured per-attempt timeout when positive.
	Call(msg []byte, timeout time.Duration) ([]byte, error)
	// Close releases the endpoint.
	Close() error
}

// Transport is the raw substrate under the reliability policy: an
// unreliable datagram path plus a monotonic clock (wall time for UDP,
// simulated time for netsim). Recv returns messages verbatim,
// trailer included.
type Transport interface {
	Send(msg []byte) error
	Recv(timeout time.Duration) ([]byte, error)
	Now() time.Duration
}

// SendTo packs and sends a message over any endpoint (ncl::pack +
// send, fire-and-forget).
func SendTo(e Endpoint, spec *MessageSpec, m Message, args [][]uint64) error {
	buf, err := Pack(spec, m.Header(), args)
	if err != nil {
		return err
	}
	return e.Send(buf)
}

// CallMessage packs m, performs a reliable Call over the endpoint, and
// unpacks the response into out (nil slices are skipped).
func CallMessage(e Endpoint, spec *MessageSpec, m Message, args, out [][]uint64, timeout time.Duration) (wire.Header, error) {
	buf, err := Pack(spec, m.Header(), args)
	if err != nil {
		return wire.Header{}, err
	}
	reply, err := e.Call(buf, timeout)
	if err != nil {
		return wire.Header{}, err
	}
	return Unpack(spec, reply, out)
}

// RecvFrom receives and unpacks one message from any endpoint.
func RecvFrom(e Endpoint, spec *MessageSpec, out [][]uint64, timeout time.Duration) (wire.Header, error) {
	msg, err := e.Recv(timeout)
	if err != nil {
		return wire.Header{}, err
	}
	return Unpack(spec, msg, out)
}
