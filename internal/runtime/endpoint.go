package runtime

import (
	"time"

	"netcl/internal/wire"
)

// Endpoint is the backend-agnostic host-side messaging surface: the
// real-UDP HostConn and the simulator's host endpoint both implement
// it, so application code and the reliability policy do not care which
// substrate carries the messages.
type Endpoint interface {
	// Send transmits one NetCL message, fire-and-forget.
	Send(msg []byte) error
	// Recv waits up to timeout for one inbound message. Duplicate
	// retransmissions are suppressed and the reliability trailer, if
	// present, is stripped.
	Recv(timeout time.Duration) ([]byte, error)
	// Call sends msg with a fresh sequence number and waits for the
	// response carrying it, retransmitting with exponential backoff
	// within the endpoint's retry budget. timeout overrides the
	// configured per-attempt timeout when positive.
	Call(msg []byte, timeout time.Duration) ([]byte, error)
	// Close releases the endpoint.
	Close() error
}

// Transport is the raw substrate under the reliability policy: an
// unreliable datagram path plus a monotonic clock (wall time for UDP,
// simulated time for netsim). Recv returns messages verbatim,
// trailer included.
type Transport interface {
	Send(msg []byte) error
	Recv(timeout time.Duration) ([]byte, error)
	Now() time.Duration
}

// BatchTransport is an optional Transport extension: SendBatch
// transmits several messages in one operation. The simulator amortizes
// the per-send host processing cost over the batch; the UDP backend
// bursts the datagrams through one writer pass. Senders with more than
// one message due (a window fill, a retransmission sweep) use it when
// available.
type BatchTransport interface {
	SendBatch(msgs [][]byte) error
}

// BufRecver is an optional Transport extension for allocation-free
// receiving: the datagram lands in buf (which must be large enough for
// the transport's MTU) and the returned slice aliases it. Callers that
// own a scratch buffer — the Channel's pump is single-threaded by
// design — avoid the per-datagram allocation of Recv.
type BufRecver interface {
	RecvBuf(buf []byte, timeout time.Duration) ([]byte, error)
}

// SendTo packs and sends a message over any endpoint (ncl::pack +
// send, fire-and-forget). The message is packed into a pooled buffer,
// so the steady-state path allocates nothing; Endpoint.Send must not
// retain the buffer past its return (both backends copy or frame it
// synchronously).
func SendTo(e Endpoint, spec *MessageSpec, m Message, args [][]uint64) error {
	buf := GetBuf()
	defer PutBuf(buf)
	packed, err := PackAppend(*buf, spec, m.Header(), args)
	if err != nil {
		return err
	}
	*buf = packed
	return e.Send(packed)
}

// CallMessage packs m, performs a reliable Call over the endpoint, and
// unpacks the response into out (nil slices are skipped). The request
// is packed into a pooled buffer: Call appends the sequence trailer
// into its own retransmission copy, so the buffer is recycled as soon
// as Call returns.
func CallMessage(e Endpoint, spec *MessageSpec, m Message, args, out [][]uint64, timeout time.Duration) (wire.Header, error) {
	buf := GetBuf()
	defer PutBuf(buf)
	packed, err := PackAppend(*buf, spec, m.Header(), args)
	if err != nil {
		return wire.Header{}, err
	}
	*buf = packed
	reply, err := e.Call(packed, timeout)
	if err != nil {
		return wire.Header{}, err
	}
	return UnpackInto(spec, reply, out)
}

// RecvFrom receives and unpacks one message from any endpoint.
func RecvFrom(e Endpoint, spec *MessageSpec, out [][]uint64, timeout time.Duration) (wire.Header, error) {
	msg, err := e.Recv(timeout)
	if err != nil {
		return wire.Header{}, err
	}
	return Unpack(spec, msg, out)
}
