package runtime

import (
	"fmt"
	"net"
	"sync"
	"time"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/wire"
)

// UDPDevice runs a behavioral-model switch behind a real UDP socket:
// the deployment analogue of the paper's UDP communication backend
// (§VI-C). NetCL messages arrive as UDP payloads, are framed, pushed
// through the P4 pipeline, and forwarded to the UDP address of the
// next-hop node. The device also implements the control-plane Client
// interface, serialized with packet processing.
type UDPDevice struct {
	ID uint16

	mu    sync.Mutex
	sw    *bmv2.Switch
	conn  *net.UDPConn
	addrs map[uint16]*net.UDPAddr
	mcast map[int][]uint16
	done  chan struct{}
	wg    sync.WaitGroup

	Processed uint64
	Dropped   uint64
}

// ServeUDPDevice starts a device on a UDP address ("127.0.0.1:0").
func ServeUDPDevice(id uint16, addr string, prog *p4.Program) (*UDPDevice, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	d := &UDPDevice{
		ID:    id,
		sw:    bmv2.New(prog),
		conn:  conn,
		addrs: map[uint16]*net.UDPAddr{},
		mcast: map[int][]uint16{},
		done:  make(chan struct{}),
	}
	d.wg.Add(1)
	go d.loop()
	return d, nil
}

// Addr returns the device's UDP address.
func (d *UDPDevice) Addr() string { return d.conn.LocalAddr().String() }

// Close stops the device.
func (d *UDPDevice) Close() error {
	close(d.done)
	err := d.conn.Close()
	d.wg.Wait()
	return err
}

// SetNodeAddr registers the UDP address of a node (host or device) and
// installs the corresponding forwarding entry (the operator's job in
// the paper's deployment story).
func (d *UDPDevice) SetNodeAddr(id uint16, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = ua
	return d.sw.InsertEntry("netcl_fwd", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(id)}},
	})
}

// SetMulticastGroup maps a group id to member node ids.
func (d *UDPDevice) SetMulticastGroup(gid int, members []uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mcast[gid] = append([]uint16(nil), members...)
}

func (d *UDPDevice) loop() {
	defer d.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := d.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-d.done:
				return
			default:
				continue
			}
		}
		msg := append([]byte(nil), buf[:n]...)
		d.process(msg)
	}
}

func (d *UDPDevice) process(msg []byte) {
	pkt := Frame(msg, uint64(d.ID), 0)
	d.mu.Lock()
	res, err := d.sw.Process(pkt, 0)
	d.Processed++
	if err != nil || res.Dropped {
		d.Dropped++
		d.mu.Unlock()
		return
	}
	out, ok := Deframe(res.Data)
	if !ok {
		d.Dropped++
		d.mu.Unlock()
		return
	}
	var dests []*net.UDPAddr
	if res.Mcast != 0 {
		for _, m := range d.mcast[res.Mcast] {
			if a := d.addrs[m]; a != nil {
				dests = append(dests, a)
			}
		}
	} else if a := d.addrs[uint16(res.Port)]; a != nil {
		dests = append(dests, a)
	}
	d.mu.Unlock()
	if len(dests) == 0 {
		d.Dropped++
		return
	}
	for _, a := range dests {
		d.conn.WriteToUDP(out, a)
	}
}

// Control-plane Client implementation (serialized with the data path).

// RegisterRead implements p4rt.Client.
func (d *UDPDevice) RegisterRead(name string, idx int) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.RegisterRead(name, idx)
}

// RegisterWrite implements p4rt.Client.
func (d *UDPDevice) RegisterWrite(name string, idx int, v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.RegisterWrite(name, idx, v)
}

// InsertEntry implements p4rt.Client.
func (d *UDPDevice) InsertEntry(table string, e *p4.Entry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.InsertEntry(table, e)
}

// DeleteEntry implements p4rt.Client.
func (d *UDPDevice) DeleteEntry(table string, keyVal uint64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.DeleteEntry(table, keyVal), nil
}

// HostConn is a host-side UDP endpoint for NetCL messages, mirroring
// the socket code of the paper's Figure 6.
type HostConn struct {
	ID     uint16
	conn   *net.UDPConn
	device *net.UDPAddr
}

// DialUDP opens a host endpoint bound to local, targeting the device.
func DialUDP(id uint16, local, device string) (*HostConn, error) {
	la, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, err
	}
	da, err := net.ResolveUDPAddr("udp", device)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &HostConn{ID: id, conn: conn, device: da}, nil
}

// Addr returns the host's UDP address.
func (h *HostConn) Addr() string { return h.conn.LocalAddr().String() }

// Close releases the socket.
func (h *HostConn) Close() error { return h.conn.Close() }

// Send transmits a packed NetCL message to the device.
func (h *HostConn) Send(msg []byte) error {
	_, err := h.conn.WriteToUDP(msg, h.device)
	return err
}

// SendMessage packs and sends in one call.
func (h *HostConn) SendMessage(spec *MessageSpec, m Message, args [][]uint64) error {
	hdr := m.Header()
	buf, err := Pack(spec, hdr, args)
	if err != nil {
		return err
	}
	return h.Send(buf)
}

// Recv waits up to timeout for a NetCL message.
func (h *HostConn) Recv(timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		if err := h.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 65536)
	n, _, err := h.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// RecvMessage receives and unpacks one message.
func (h *HostConn) RecvMessage(spec *MessageSpec, args [][]uint64, timeout time.Duration) (wire.Header, error) {
	msg, err := h.Recv(timeout)
	if err != nil {
		return wire.Header{}, err
	}
	hdr, err := Unpack(spec, msg, args)
	if err != nil {
		return hdr, fmt.Errorf("recv: %w", err)
	}
	return hdr, nil
}
