package runtime

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/p4rt"
	"netcl/internal/wire"
)

// UDPDevice runs a behavioral-model switch behind a real UDP socket:
// the deployment analogue of the paper's UDP communication backend
// (§VI-C). NetCL messages arrive as UDP payloads, are framed in place
// inside pooled receive buffers, pushed through the P4 pipeline, and
// forwarded to the UDP address of the next-hop node. With Workers > 1
// the pipeline is a flow-sharded worker pool (bmv2.Sharded) with
// bounded queues: a full queue drops the datagram and counts it in
// QueueFull, the UDP analogue of a line-rate device shedding load.
// The device also implements the control-plane Client interface; on
// the sharded path register access quiesces the workers while table
// updates publish RCU snapshots without stalling them.
type UDPDevice struct {
	ID uint16

	mu      sync.Mutex
	sw      *bmv2.Switch
	sharded *bmv2.Sharded // nil when Workers <= 1 (serialized legacy path)
	conn    *net.UDPConn
	addrs   map[uint16]*net.UDPAddr
	ports   map[string]int // source UDP address -> ingress port (node id)
	mcast   map[int][]uint16
	done    chan struct{}
	wg      sync.WaitGroup
	faults  *faultInjector
	paused  bool
	bufs    sync.Pool

	// Counters are updated atomically; read them via Stats, or
	// directly once the device is closed.
	Processed uint64
	Dropped   uint64
	// QueueFull counts datagrams shed because a worker queue was full.
	QueueFull uint64
	// FaultDropped counts datagrams discarded by the fault injector or
	// while the device was paused (chaos testing).
	FaultDropped uint64
	// FaultDuplicated counts datagrams duplicated by the injector.
	FaultDuplicated uint64
}

// dbuf is a pooled datagram buffer: FrameOverhead bytes of headroom
// for in-place framing plus a max-size UDP payload.
type dbuf struct{ b []byte }

// DeviceConfig parameterizes a UDP device process.
type DeviceConfig struct {
	// ID is the device's NetCL node id.
	ID uint16
	// Addr is the UDP listen address ("127.0.0.1:0").
	Addr string
	// Prog is the compiled P4 program to run.
	Prog *p4.Program
	// Faults optionally injects seeded probabilistic loss/duplication
	// for chaos testing (zero value = faultless).
	Faults FaultSpec
	// Workers > 1 processes packets on a flow-sharded worker pool.
	// Requires the compiled engine (reference-engine programs fall
	// back to the serialized path) and a FlowKey that honors the
	// shard-by-flow invariant.
	Workers int
	// QueueDepth bounds each worker's queue (default 256).
	QueueDepth int
	// FlowKey extracts the flow identity from a framed packet. nil
	// serializes all packets on one worker (always safe).
	FlowKey bmv2.FlowKeyFunc
	// Burst caps how many queued packets a worker drains per wakeup
	// into one burst execution (default bmv2.MaxBurst; 1 disables).
	Burst int
}

// ServeDevice starts a device process described by cfg.
func ServeDevice(cfg DeviceConfig) (*UDPDevice, error) {
	ua, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	d := &UDPDevice{
		ID:     cfg.ID,
		sw:     bmv2.New(cfg.Prog),
		conn:   conn,
		addrs:  map[uint16]*net.UDPAddr{},
		ports:  map[string]int{},
		mcast:  map[int][]uint16{},
		done:   make(chan struct{}),
		faults: newFaultInjector(cfg.Faults),
	}
	d.bufs.New = func() any { return &dbuf{b: make([]byte, FrameOverhead+65536)} }
	if cfg.Workers > 1 && d.sw.Compiled() {
		sh, err := bmv2.NewSharded(d.sw, bmv2.ShardedConfig{
			Shards: cfg.Workers, QueueDepth: cfg.QueueDepth,
			FlowKey: cfg.FlowKey, Burst: cfg.Burst,
		})
		if err != nil {
			conn.Close()
			return nil, err
		}
		d.sharded = sh
	}
	d.wg.Add(1)
	go d.loop()
	return d, nil
}

// ServeUDPDevice starts a device on a UDP address ("127.0.0.1:0").
//
// Deprecated: use ServeDevice with a DeviceConfig, which also carries
// the fault-injection knobs.
func ServeUDPDevice(id uint16, addr string, prog *p4.Program) (*UDPDevice, error) {
	return ServeDevice(DeviceConfig{ID: id, Addr: addr, Prog: prog})
}

// Pause makes the device drop every datagram until Restart: the
// chaos-testing analogue of a crashed or rebooting switch. Register
// and table state is preserved across the outage.
func (d *UDPDevice) Pause() {
	d.mu.Lock()
	d.paused = true
	d.mu.Unlock()
}

// Restart resumes a paused device.
func (d *UDPDevice) Restart() {
	d.mu.Lock()
	d.paused = false
	d.mu.Unlock()
}

// Addr returns the device's UDP address.
func (d *UDPDevice) Addr() string { return d.conn.LocalAddr().String() }

// Close stops the device: the receive loop exits, queued packets
// drain, and the workers stop.
func (d *UDPDevice) Close() error {
	close(d.done)
	err := d.conn.Close()
	d.wg.Wait()
	if d.sharded != nil {
		d.sharded.Close()
	}
	return err
}

// DeviceStats is a consistent snapshot of the device counters.
type DeviceStats struct {
	Processed       uint64
	Dropped         uint64
	QueueFull       uint64
	FaultDropped    uint64
	FaultDuplicated uint64
	Workers         int
}

// Stats snapshots the device counters (safe while traffic is flowing).
func (d *UDPDevice) Stats() DeviceStats {
	st := DeviceStats{
		Processed:       atomic.LoadUint64(&d.Processed),
		Dropped:         atomic.LoadUint64(&d.Dropped),
		QueueFull:       atomic.LoadUint64(&d.QueueFull),
		FaultDropped:    atomic.LoadUint64(&d.FaultDropped),
		FaultDuplicated: atomic.LoadUint64(&d.FaultDuplicated),
		Workers:         1,
	}
	if d.sharded != nil {
		st.Workers = d.sharded.Shards()
	}
	return st
}

// SetNodeAddr registers the UDP address of a node (host or device) and
// installs the corresponding forwarding entry (the operator's job in
// the paper's deployment story).
func (d *UDPDevice) SetNodeAddr(id uint16, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = ua
	// Nodes send from the conn they registered, so the datagram source
	// address identifies the sender: its id becomes the ingress port.
	d.ports[ua.String()] = int(id)
	return d.sw.InsertEntry("netcl_fwd", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(id)}},
	})
}

// SetMulticastGroup maps a group id to member node ids.
func (d *UDPDevice) SetMulticastGroup(gid int, members []uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mcast[gid] = append([]uint16(nil), members...)
}

func (d *UDPDevice) loop() {
	defer d.wg.Done()
	for {
		db := d.bufs.Get().(*dbuf)
		// Datagrams land at offset FrameOverhead so the encapsulation
		// headers can be written in place: no per-packet allocation and
		// no payload copy on the receive path.
		n, raddr, err := d.conn.ReadFromUDP(db.b[FrameOverhead:])
		if err != nil {
			d.bufs.Put(db)
			select {
			case <-d.done:
				return
			default:
				continue
			}
		}
		pkt := FrameInPlace(db.b[:FrameOverhead+n], uint64(d.ID), 0)
		d.mu.Lock()
		paused := d.paused
		inPort := 0
		if raddr != nil {
			inPort = d.ports[raddr.String()] // 0 when the sender is unregistered
		}
		d.mu.Unlock()
		if paused || d.faults.drop() {
			atomic.AddUint64(&d.FaultDropped, 1)
			d.bufs.Put(db)
			continue
		}
		dup := d.faults.dup()
		if dup {
			atomic.AddUint64(&d.FaultDuplicated, 1)
		}
		if d.sharded != nil {
			if dup {
				// The duplicate needs its own buffer: the original is
				// released by its completion callback.
				db2 := d.bufs.Get().(*dbuf)
				pkt2 := db2.b[:len(pkt)]
				copy(pkt2, pkt)
				d.submit(pkt2, inPort, db2)
			}
			d.submit(pkt, inPort, db)
			continue
		}
		d.processInline(pkt, inPort)
		if dup {
			d.processInline(pkt, inPort)
		}
		d.bufs.Put(db)
	}
}

// submit hands a framed packet to its flow's worker; a full queue
// sheds the packet (open-loop backpressure).
func (d *UDPDevice) submit(pkt []byte, inPort int, db *dbuf) {
	ok := d.sharded.SubmitPort(pkt, inPort, func(res *bmv2.Result, err error) {
		d.emit(res, err)
		d.bufs.Put(db)
	})
	if !ok {
		atomic.AddUint64(&d.QueueFull, 1)
		atomic.AddUint64(&d.Dropped, 1)
		d.bufs.Put(db)
	}
}

// processInline is the serialized path (Workers <= 1): processing
// holds d.mu, preserving the seed behavior of one packet at a time,
// strictly ordered with control-plane calls.
func (d *UDPDevice) processInline(pkt []byte, inPort int) {
	d.mu.Lock()
	res, err := d.sw.Process(pkt, inPort)
	d.mu.Unlock()
	d.emit(res, err)
}

// emit counts one processed packet and forwards its output, if any.
// Safe from any worker goroutine: the maps are read under d.mu and
// net.UDPConn writes are concurrency-safe.
func (d *UDPDevice) emit(res *bmv2.Result, err error) {
	atomic.AddUint64(&d.Processed, 1)
	if err != nil || res.Dropped {
		atomic.AddUint64(&d.Dropped, 1)
		return
	}
	out, ok := Deframe(res.Data)
	if !ok {
		atomic.AddUint64(&d.Dropped, 1)
		return
	}
	var dests []*net.UDPAddr
	d.mu.Lock()
	if res.Mcast != 0 {
		for _, m := range d.mcast[res.Mcast] {
			if a := d.addrs[m]; a != nil {
				dests = append(dests, a)
			}
		}
	} else if a := d.addrs[uint16(res.Port)]; a != nil {
		dests = append(dests, a)
	}
	d.mu.Unlock()
	if len(dests) == 0 {
		atomic.AddUint64(&d.Dropped, 1)
		return
	}
	for _, a := range dests {
		if d.faults.drop() {
			atomic.AddUint64(&d.FaultDropped, 1)
			continue
		}
		d.conn.WriteToUDP(out, a)
	}
}

// Control-plane Client implementation. On the serialized path every
// call holds d.mu, which also serializes it with inline processing. On
// the sharded path register access quiesces the workers (registers are
// plain memory owned by the data path) while table mutations publish
// RCU snapshots and never stall a worker. Write batches apply
// transactionally: in-flight packets observe the whole batch or none
// of it.

// Write implements p4rt.Client: one all-or-nothing batch.
func (d *UDPDevice) Write(b *p4rt.WriteBatch) (*p4rt.WriteResult, error) {
	if d.sharded != nil {
		return d.sharded.Write(b)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.Write(b)
}

// RegisterRead implements p4rt.Client.
func (d *UDPDevice) RegisterRead(name string, idx int) (uint64, error) {
	if d.sharded != nil {
		return d.sharded.RegisterRead(name, idx)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.RegisterRead(name, idx)
}

// RegisterWrite implements p4rt.Client.
func (d *UDPDevice) RegisterWrite(name string, idx int, v uint64) error {
	if d.sharded != nil {
		return d.sharded.RegisterWrite(name, idx, v)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.RegisterWrite(name, idx, v)
}

// SetDefaultAction configures a table's default action (operator
// configuration, e.g. the baseline AGG worker count).
func (d *UDPDevice) SetDefaultAction(table, action string, args []uint64) error {
	if d.sharded != nil {
		return d.sharded.SetDefaultAction(table, action, args)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.SetDefaultAction(table, action, args)
}

// InsertEntry implements p4rt.Client.
func (d *UDPDevice) InsertEntry(table string, e *p4.Entry) error {
	if d.sharded != nil {
		return d.sharded.InsertEntry(table, e)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.InsertEntry(table, e)
}

// DeleteEntry implements p4rt.Client: entries are removed only when
// every key value matches the full tuple.
func (d *UDPDevice) DeleteEntry(table string, keys ...uint64) (int, error) {
	if d.sharded != nil {
		return d.sharded.DeleteEntry(table, keys...), nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.DeleteEntry(table, keys...), nil
}

// HostConn is a host-side UDP endpoint for NetCL messages, mirroring
// the socket code of the paper's Figure 6. It implements Endpoint:
// Send is fire-and-forget, Recv suppresses duplicates, and Call runs
// the reliability protocol (seq, retransmit, backoff).
type HostConn struct {
	ID     uint16
	conn   *net.UDPConn
	device *net.UDPAddr
	rel    *Reliability
	start  time.Time
}

// DialConfig parameterizes a host endpoint.
type DialConfig struct {
	// ID is the host's NetCL node id.
	ID uint16
	// Local is the UDP address to bind ("127.0.0.1:0").
	Local string
	// Device is the UDP address of the first-hop device.
	Device string
	// Reliability carries the retransmission knobs (zero value =
	// defaults: 20ms timeout, 8 retries, 2x backoff).
	Reliability ReliabilityConfig
}

// Dial opens the host endpoint described by cfg.
func Dial(cfg DialConfig) (*HostConn, error) {
	la, err := net.ResolveUDPAddr("udp", cfg.Local)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, err
	}
	da, err := net.ResolveUDPAddr("udp", cfg.Device)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &HostConn{
		ID: cfg.ID, conn: conn, device: da,
		rel: NewReliability(cfg.Reliability), start: time.Now(),
	}, nil
}

// DialUDP opens a host endpoint bound to local, targeting the device.
//
// Deprecated: use Dial with a DialConfig, which also carries the
// reliability knobs.
func DialUDP(id uint16, local, device string) (*HostConn, error) {
	return Dial(DialConfig{ID: id, Local: local, Device: device})
}

// Addr returns the host's UDP address.
func (h *HostConn) Addr() string { return h.conn.LocalAddr().String() }

// Close releases the socket.
func (h *HostConn) Close() error { return h.conn.Close() }

// Stats returns the endpoint's reliability counters.
func (h *HostConn) Stats() RelStats { return h.rel.Stats() }

// hostTransport adapts the raw socket to the reliability layer.
type hostTransport struct{ h *HostConn }

func (t hostTransport) Send(msg []byte) error {
	_, err := t.h.conn.WriteToUDP(msg, t.h.device)
	return err
}

func (t hostTransport) Recv(timeout time.Duration) ([]byte, error) {
	return t.RecvBuf(make([]byte, 65536), timeout)
}

// RecvBuf receives one datagram into the caller's buffer (the
// allocation-free path; see BufRecver).
func (t hostTransport) RecvBuf(buf []byte, timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		if err := t.h.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	n, _, err := t.h.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// SendBatch bursts several datagrams to the device in one writer
// pass: one deadline-free loop over the socket, amortizing the
// per-send interface dispatch of the retransmission sweep.
func (t hostTransport) SendBatch(msgs [][]byte) error {
	for _, m := range msgs {
		if _, err := t.h.conn.WriteToUDP(m, t.h.device); err != nil {
			return err
		}
	}
	return nil
}

func (t hostTransport) Now() time.Duration { return time.Since(t.h.start) }

// Send transmits a packed NetCL message to the device, unreliably.
func (h *HostConn) Send(msg []byte) error { return hostTransport{h}.Send(msg) }

// SendMessage packs (into a pooled buffer) and sends in one call.
func (h *HostConn) SendMessage(spec *MessageSpec, m Message, args [][]uint64) error {
	return SendTo(h, spec, m, args)
}

// NewChannel opens a pipelined sliding-window channel over this
// connection's socket (see Channel). A zero cfg.Reliability inherits
// the connection's reliability knobs. The channel and the stop-and-
// wait methods share the socket — use one or the other, not both.
func (h *HostConn) NewChannel(cfg ChannelConfig) *Channel {
	if cfg.Reliability == (ReliabilityConfig{}) {
		cfg.Reliability = h.rel.Config()
	}
	return NewChannel(hostTransport{h}, cfg)
}

// SendReliable transmits msg with an ack request, retransmitting until
// the receiving host acknowledges it or the retry budget runs out.
func (h *HostConn) SendReliable(msg []byte, timeout time.Duration) error {
	return h.rel.SendReliable(hostTransport{h}, msg, timeout)
}

// Recv waits up to timeout for a NetCL message. Acks are consumed,
// duplicates suppressed, and the reliability trailer stripped;
// untrailered messages pass through unchanged.
func (h *HostConn) Recv(timeout time.Duration) ([]byte, error) {
	return h.rel.Recv(hostTransport{h}, timeout)
}

// Call sends msg and waits for the response carrying its sequence
// number, retransmitting with exponential backoff within the
// configured retry budget.
func (h *HostConn) Call(msg []byte, timeout time.Duration) ([]byte, error) {
	return h.rel.Call(hostTransport{h}, msg, timeout)
}

// CallMessage packs m, Calls, and unpacks the response into out.
func (h *HostConn) CallMessage(spec *MessageSpec, m Message, args, out [][]uint64, timeout time.Duration) (wire.Header, error) {
	return CallMessage(h, spec, m, args, out, timeout)
}

// RecvMessage receives and unpacks one message.
func (h *HostConn) RecvMessage(spec *MessageSpec, args [][]uint64, timeout time.Duration) (wire.Header, error) {
	msg, err := h.Recv(timeout)
	if err != nil {
		return wire.Header{}, err
	}
	hdr, err := Unpack(spec, msg, args)
	if err != nil {
		return hdr, fmt.Errorf("recv: %w", err)
	}
	return hdr, nil
}
