package runtime

import (
	"fmt"
	"net"
	"sync"
	"time"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/wire"
)

// UDPDevice runs a behavioral-model switch behind a real UDP socket:
// the deployment analogue of the paper's UDP communication backend
// (§VI-C). NetCL messages arrive as UDP payloads, are framed, pushed
// through the P4 pipeline, and forwarded to the UDP address of the
// next-hop node. The device also implements the control-plane Client
// interface, serialized with packet processing.
type UDPDevice struct {
	ID uint16

	mu     sync.Mutex
	sw     *bmv2.Switch
	conn   *net.UDPConn
	addrs  map[uint16]*net.UDPAddr
	mcast  map[int][]uint16
	done   chan struct{}
	wg     sync.WaitGroup
	faults *faultInjector
	paused bool

	Processed uint64
	Dropped   uint64
	// FaultDropped counts datagrams discarded by the fault injector or
	// while the device was paused (chaos testing).
	FaultDropped uint64
	// FaultDuplicated counts datagrams duplicated by the injector.
	FaultDuplicated uint64
}

// DeviceConfig parameterizes a UDP device process.
type DeviceConfig struct {
	// ID is the device's NetCL node id.
	ID uint16
	// Addr is the UDP listen address ("127.0.0.1:0").
	Addr string
	// Prog is the compiled P4 program to run.
	Prog *p4.Program
	// Faults optionally injects seeded probabilistic loss/duplication
	// for chaos testing (zero value = faultless).
	Faults FaultSpec
}

// ServeDevice starts a device process described by cfg.
func ServeDevice(cfg DeviceConfig) (*UDPDevice, error) {
	ua, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	d := &UDPDevice{
		ID:     cfg.ID,
		sw:     bmv2.New(cfg.Prog),
		conn:   conn,
		addrs:  map[uint16]*net.UDPAddr{},
		mcast:  map[int][]uint16{},
		done:   make(chan struct{}),
		faults: newFaultInjector(cfg.Faults),
	}
	d.wg.Add(1)
	go d.loop()
	return d, nil
}

// ServeUDPDevice starts a device on a UDP address ("127.0.0.1:0").
//
// Deprecated: use ServeDevice with a DeviceConfig, which also carries
// the fault-injection knobs.
func ServeUDPDevice(id uint16, addr string, prog *p4.Program) (*UDPDevice, error) {
	return ServeDevice(DeviceConfig{ID: id, Addr: addr, Prog: prog})
}

// Pause makes the device drop every datagram until Restart: the
// chaos-testing analogue of a crashed or rebooting switch. Register
// and table state is preserved across the outage.
func (d *UDPDevice) Pause() {
	d.mu.Lock()
	d.paused = true
	d.mu.Unlock()
}

// Restart resumes a paused device.
func (d *UDPDevice) Restart() {
	d.mu.Lock()
	d.paused = false
	d.mu.Unlock()
}

// Addr returns the device's UDP address.
func (d *UDPDevice) Addr() string { return d.conn.LocalAddr().String() }

// Close stops the device.
func (d *UDPDevice) Close() error {
	close(d.done)
	err := d.conn.Close()
	d.wg.Wait()
	return err
}

// SetNodeAddr registers the UDP address of a node (host or device) and
// installs the corresponding forwarding entry (the operator's job in
// the paper's deployment story).
func (d *UDPDevice) SetNodeAddr(id uint16, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = ua
	return d.sw.InsertEntry("netcl_fwd", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(id)}},
	})
}

// SetMulticastGroup maps a group id to member node ids.
func (d *UDPDevice) SetMulticastGroup(gid int, members []uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mcast[gid] = append([]uint16(nil), members...)
}

func (d *UDPDevice) loop() {
	defer d.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := d.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-d.done:
				return
			default:
				continue
			}
		}
		msg := append([]byte(nil), buf[:n]...)
		d.mu.Lock()
		paused := d.paused
		if paused || d.faults.drop() {
			d.FaultDropped++
			d.mu.Unlock()
			continue
		}
		d.mu.Unlock()
		d.process(msg)
		if d.faults.dup() {
			d.mu.Lock()
			d.FaultDuplicated++
			d.mu.Unlock()
			d.process(msg)
		}
	}
}

func (d *UDPDevice) process(msg []byte) {
	pkt := Frame(msg, uint64(d.ID), 0)
	d.mu.Lock()
	res, err := d.sw.Process(pkt, 0)
	d.Processed++
	if err != nil || res.Dropped {
		d.Dropped++
		d.mu.Unlock()
		return
	}
	out, ok := Deframe(res.Data)
	if !ok {
		d.Dropped++
		d.mu.Unlock()
		return
	}
	var dests []*net.UDPAddr
	if res.Mcast != 0 {
		for _, m := range d.mcast[res.Mcast] {
			if a := d.addrs[m]; a != nil {
				dests = append(dests, a)
			}
		}
	} else if a := d.addrs[uint16(res.Port)]; a != nil {
		dests = append(dests, a)
	}
	d.mu.Unlock()
	if len(dests) == 0 {
		d.Dropped++
		return
	}
	for _, a := range dests {
		if d.faults.drop() {
			d.mu.Lock()
			d.FaultDropped++
			d.mu.Unlock()
			continue
		}
		d.conn.WriteToUDP(out, a)
	}
}

// Control-plane Client implementation (serialized with the data path).

// RegisterRead implements p4rt.Client.
func (d *UDPDevice) RegisterRead(name string, idx int) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.RegisterRead(name, idx)
}

// RegisterWrite implements p4rt.Client.
func (d *UDPDevice) RegisterWrite(name string, idx int, v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.RegisterWrite(name, idx, v)
}

// SetDefaultAction configures a table's default action (operator
// configuration, e.g. the baseline AGG worker count).
func (d *UDPDevice) SetDefaultAction(table, action string, args []uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.SetDefaultAction(table, action, args)
}

// InsertEntry implements p4rt.Client.
func (d *UDPDevice) InsertEntry(table string, e *p4.Entry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.InsertEntry(table, e)
}

// DeleteEntry implements p4rt.Client.
func (d *UDPDevice) DeleteEntry(table string, keyVal uint64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sw.DeleteEntry(table, keyVal), nil
}

// HostConn is a host-side UDP endpoint for NetCL messages, mirroring
// the socket code of the paper's Figure 6. It implements Endpoint:
// Send is fire-and-forget, Recv suppresses duplicates, and Call runs
// the reliability protocol (seq, retransmit, backoff).
type HostConn struct {
	ID     uint16
	conn   *net.UDPConn
	device *net.UDPAddr
	rel    *Reliability
	start  time.Time
}

// DialConfig parameterizes a host endpoint.
type DialConfig struct {
	// ID is the host's NetCL node id.
	ID uint16
	// Local is the UDP address to bind ("127.0.0.1:0").
	Local string
	// Device is the UDP address of the first-hop device.
	Device string
	// Reliability carries the retransmission knobs (zero value =
	// defaults: 20ms timeout, 8 retries, 2x backoff).
	Reliability ReliabilityConfig
}

// Dial opens the host endpoint described by cfg.
func Dial(cfg DialConfig) (*HostConn, error) {
	la, err := net.ResolveUDPAddr("udp", cfg.Local)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, err
	}
	da, err := net.ResolveUDPAddr("udp", cfg.Device)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &HostConn{
		ID: cfg.ID, conn: conn, device: da,
		rel: NewReliability(cfg.Reliability), start: time.Now(),
	}, nil
}

// DialUDP opens a host endpoint bound to local, targeting the device.
//
// Deprecated: use Dial with a DialConfig, which also carries the
// reliability knobs.
func DialUDP(id uint16, local, device string) (*HostConn, error) {
	return Dial(DialConfig{ID: id, Local: local, Device: device})
}

// Addr returns the host's UDP address.
func (h *HostConn) Addr() string { return h.conn.LocalAddr().String() }

// Close releases the socket.
func (h *HostConn) Close() error { return h.conn.Close() }

// Stats returns the endpoint's reliability counters.
func (h *HostConn) Stats() RelStats { return h.rel.Stats() }

// hostTransport adapts the raw socket to the reliability layer.
type hostTransport struct{ h *HostConn }

func (t hostTransport) Send(msg []byte) error {
	_, err := t.h.conn.WriteToUDP(msg, t.h.device)
	return err
}

func (t hostTransport) Recv(timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		if err := t.h.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 65536)
	n, _, err := t.h.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func (t hostTransport) Now() time.Duration { return time.Since(t.h.start) }

// Send transmits a packed NetCL message to the device, unreliably.
func (h *HostConn) Send(msg []byte) error { return hostTransport{h}.Send(msg) }

// SendMessage packs and sends in one call.
func (h *HostConn) SendMessage(spec *MessageSpec, m Message, args [][]uint64) error {
	hdr := m.Header()
	buf, err := Pack(spec, hdr, args)
	if err != nil {
		return err
	}
	return h.Send(buf)
}

// SendReliable transmits msg with an ack request, retransmitting until
// the receiving host acknowledges it or the retry budget runs out.
func (h *HostConn) SendReliable(msg []byte, timeout time.Duration) error {
	return h.rel.SendReliable(hostTransport{h}, msg, timeout)
}

// Recv waits up to timeout for a NetCL message. Acks are consumed,
// duplicates suppressed, and the reliability trailer stripped;
// untrailered messages pass through unchanged.
func (h *HostConn) Recv(timeout time.Duration) ([]byte, error) {
	return h.rel.Recv(hostTransport{h}, timeout)
}

// Call sends msg and waits for the response carrying its sequence
// number, retransmitting with exponential backoff within the
// configured retry budget.
func (h *HostConn) Call(msg []byte, timeout time.Duration) ([]byte, error) {
	return h.rel.Call(hostTransport{h}, msg, timeout)
}

// CallMessage packs m, Calls, and unpacks the response into out.
func (h *HostConn) CallMessage(spec *MessageSpec, m Message, args, out [][]uint64, timeout time.Duration) (wire.Header, error) {
	return CallMessage(h, spec, m, args, out, timeout)
}

// RecvMessage receives and unpacks one message.
func (h *HostConn) RecvMessage(spec *MessageSpec, args [][]uint64, timeout time.Duration) (wire.Header, error) {
	msg, err := h.Recv(timeout)
	if err != nil {
		return wire.Header{}, err
	}
	hdr, err := Unpack(spec, msg, args)
	if err != nil {
		return hdr, fmt.Errorf("recv: %w", err)
	}
	return hdr, nil
}
