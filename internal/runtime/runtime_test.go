package runtime

import (
	"testing"
	"testing/quick"
	"time"

	"netcl/internal/ir"
	"netcl/internal/p4"
	"netcl/internal/p4rt"
	"netcl/internal/wire"
)

func demoSpec() *MessageSpec {
	return &MessageSpec{
		Comp: 1,
		Args: []ArgSpec{
			{Name: "op", Bytes: 1, Count: 1},
			{Name: "k", Bytes: 4, Count: 1},
			{Name: "v", Bytes: 4, Count: 4, Out: true},
		},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	spec := demoSpec()
	hdr := Message{Src: 1, Dst: 2, Device: 3, Comp: 1}.Header()
	buf, err := Pack(spec, hdr, [][]uint64{{7}, {0xDEADBEEF}, {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != spec.Size() {
		t.Fatalf("size %d, want %d", len(buf), spec.Size())
	}
	op := make([]uint64, 1)
	k := make([]uint64, 1)
	v := make([]uint64, 4)
	outHdr, err := Unpack(spec, buf, [][]uint64{op, k, v})
	if err != nil {
		t.Fatal(err)
	}
	if outHdr.To != 3 || outHdr.From != wire.None {
		t.Errorf("header: %+v", outHdr)
	}
	if op[0] != 7 || k[0] != 0xDEADBEEF || v[3] != 4 {
		t.Errorf("values: %v %v %v", op, k, v)
	}
}

func TestPackNilSkipsArgument(t *testing.T) {
	spec := demoSpec()
	hdr := Message{Src: 1, Dst: 2, Device: 3, Comp: 1}.Header()
	buf, err := Pack(spec, hdr, [][]uint64{{7}, nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	k := make([]uint64, 1)
	if _, err := Unpack(spec, buf, [][]uint64{nil, k, nil}); err != nil {
		t.Fatal(err)
	}
	if k[0] != 0 {
		t.Errorf("nil-packed arg should read back zero, got %d", k[0])
	}
}

func TestPackErrors(t *testing.T) {
	spec := demoSpec()
	hdr := wire.Header{}
	if _, err := Pack(spec, hdr, [][]uint64{{1}}); err == nil {
		t.Error("wrong slot count must fail")
	}
	if _, err := Pack(spec, hdr, [][]uint64{{1}, {2}, {3}}); err == nil {
		t.Error("wrong element count must fail")
	}
	if _, err := Unpack(spec, make([]byte, 4), make([][]uint64, 3)); err == nil {
		t.Error("short message must fail")
	}
}

func TestPackUnpackProperty(t *testing.T) {
	spec := &MessageSpec{Comp: 2, Args: []ArgSpec{
		{Name: "a", Bytes: 2, Count: 3},
		{Name: "b", Bytes: 8, Count: 1},
	}}
	f := func(a0, a1, a2 uint16, b uint64) bool {
		hdr := Message{Src: 9, Dst: 8, Device: 7, Comp: 2}.Header()
		buf, err := Pack(spec, hdr, [][]uint64{{uint64(a0), uint64(a1), uint64(a2)}, {b}})
		if err != nil {
			return false
		}
		a := make([]uint64, 3)
		bb := make([]uint64, 1)
		if _, err := Unpack(spec, buf, [][]uint64{a, bb}); err != nil {
			return false
		}
		return a[0] == uint64(a0) && a[1] == uint64(a1) && a[2] == uint64(a2) && bb[0] == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameDeframe(t *testing.T) {
	msg := []byte{1, 2, 3, 4, 5}
	pkt := Frame(msg, 0xAA, 0xBB)
	if len(pkt) != FrameOverhead+len(msg) {
		t.Fatalf("frame size %d", len(pkt))
	}
	out, ok := Deframe(pkt)
	if !ok || string(out) != string(msg) {
		t.Fatal("deframe mismatch")
	}
	// Non-NetCL port must be rejected.
	pkt[36] = 0
	pkt[37] = 53
	if _, ok := Deframe(pkt); ok {
		t.Error("wrong port accepted")
	}
	if _, ok := Deframe([]byte{1, 2, 3}); ok {
		t.Error("short frame accepted")
	}
}

func TestManagedResolution(t *testing.T) {
	mems := []*ir.MemRef{
		{Name: "cms__0", Elem: ir.U32, Dims: []int{4096}, Managed: true},
		{Name: "cms__1", Elem: ir.U32, Dims: []int{4096}, Managed: true},
		{Name: "flat", Elem: ir.U16, Dims: []int{8, 4}, Managed: true},
		{Name: "ro", Elem: ir.U32, Dims: []int{4}},
	}
	fake := &fakeCP{regs: map[string][]uint64{
		"reg_cms__0": make([]uint64, 4096),
		"reg_cms__1": make([]uint64, 4096),
		"reg_flat":   make([]uint64, 32),
		"reg_ro":     make([]uint64, 4),
	}}
	c := &DeviceConnection{CP: fake, Mems: mems}

	// Partition-aware resolution: cms[1][7] -> reg_cms__1[7].
	if err := c.ManagedWrite("cms", []int{1, 7}, 99); err != nil {
		t.Fatal(err)
	}
	if fake.regs["reg_cms__1"][7] != 99 {
		t.Error("partitioned write landed wrong")
	}
	v, err := c.ManagedRead("cms", []int{1, 7})
	if err != nil || v != 99 {
		t.Errorf("read back %d, %v", v, err)
	}
	// Multi-dim flattening: flat[2][3] -> index 11.
	if err := c.ManagedWrite("flat", []int{2, 3}, 5); err != nil {
		t.Fatal(err)
	}
	if fake.regs["reg_flat"][11] != 5 {
		t.Error("flattening wrong")
	}
	// _net_-only memory rejects host writes.
	if err := c.ManagedWrite("ro", []int{0}, 1); err == nil {
		t.Error("write to _net_ memory must fail")
	}
	// Bounds checks.
	if err := c.ManagedWrite("flat", []int{9, 0}, 1); err == nil {
		t.Error("oob index must fail")
	}
	if _, err := c.ManagedRead("nosuch", nil); err == nil {
		t.Error("unknown memory must fail")
	}
}

// fakeCP is an in-memory control plane speaking the batch API.
type fakeCP struct {
	regs    map[string][]uint64
	entries map[string][]*p4.Entry
	batches int // Write calls observed
	ops     int // ops observed across all batches
}

func (f *fakeCP) RegisterRead(name string, idx int) (uint64, error) {
	return f.regs[name][idx], nil
}

func (f *fakeCP) Write(b *p4rt.WriteBatch) (*p4rt.WriteResult, error) {
	f.batches++
	f.ops += len(b.Ops)
	res := &p4rt.WriteResult{Removed: make([]int, len(b.Ops))}
	for i := range b.Ops {
		op := &b.Ops[i]
		switch op.Kind {
		case p4rt.OpRegisterWrite:
			f.regs[op.Reg][op.Idx] = op.Val
		case p4rt.OpInsert:
			if f.entries == nil {
				f.entries = map[string][]*p4.Entry{}
			}
			f.entries[op.Table] = append(f.entries[op.Table], op.Entry)
		case p4rt.OpDelete:
			var keep []*p4.Entry
			for _, e := range f.entries[op.Table] {
				if entryMatches(e, op.Keys) {
					res.Removed[i]++
					continue
				}
				keep = append(keep, e)
			}
			if f.entries == nil {
				f.entries = map[string][]*p4.Entry{}
			}
			f.entries[op.Table] = keep
		}
	}
	return res, nil
}

// entryMatches is the full-tuple delete rule: same arity, all values
// equal.
func entryMatches(e *p4.Entry, keys []uint64) bool {
	if len(keys) == 0 || len(e.Keys) != len(keys) {
		return false
	}
	for i, k := range keys {
		if e.Keys[i].Value != k {
			return false
		}
	}
	return true
}

func (f *fakeCP) RegisterWrite(name string, idx int, v uint64) error {
	_, err := f.Write(p4rt.NewWriteBatch().RegisterWrite(name, idx, v))
	return err
}

func (f *fakeCP) InsertEntry(table string, e *p4.Entry) error {
	_, err := f.Write(p4rt.NewWriteBatch().Insert(table, e))
	return err
}

func (f *fakeCP) DeleteEntry(table string, keys ...uint64) (int, error) {
	res, err := f.Write(p4rt.NewWriteBatch().Delete(table, keys...))
	if err != nil {
		return 0, err
	}
	return res.Removed[0], nil
}

func TestManagedLookupEntries(t *testing.T) {
	mems := []*ir.MemRef{
		{Name: "cache", Elem: ir.U32, KeyType: ir.U32, Dims: []int{64},
			LKind: ir.LookupExact, Managed: true},
	}
	fake := &fakeCP{regs: map[string][]uint64{}}
	c := &DeviceConnection{CP: fake, Mems: mems}
	if err := c.LookupInsert("cache", 5, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.LookupInsert("cache", 5, 51); err != nil {
		t.Fatal(err)
	}
	// Replace semantics: one entry for key 5 with the new value.
	es := fake.entries["lu_cache"]
	if len(es) != 1 || es[0].Action.Args[0] != 51 {
		t.Fatalf("entries: %+v", es)
	}
	// Each replace pair must ride in ONE batch: a concurrent packet may
	// never observe the key unbound mid-replace.
	if fake.batches != 2 || fake.ops != 4 {
		t.Errorf("replaces should be 2-op batches: %d ops in %d batches", fake.ops, fake.batches)
	}
	n, err := c.LookupDelete("cache", 5)
	if err != nil || n != 1 {
		t.Fatalf("delete: %d %v", n, err)
	}
	if err := c.LookupInsert("nosuch", 1, 1); err == nil {
		t.Error("unknown lookup must fail")
	}
}

func TestManagedTxnWriteCombining(t *testing.T) {
	mems := []*ir.MemRef{
		{Name: "vals", Elem: ir.U32, Dims: []int{16}, Managed: true},
		{Name: "cache", Elem: ir.U32, KeyType: ir.U32, Dims: []int{64},
			LKind: ir.LookupExact, Managed: true},
	}
	fake := &fakeCP{regs: map[string][]uint64{"reg_vals": make([]uint64, 16)}}
	c := &DeviceConnection{CP: fake, Mems: mems}

	txn := c.Txn()
	for v := uint64(1); v <= 100; v++ {
		txn.Write("vals", []int{3}, v) // same cell: must write-combine
	}
	txn.Write("vals", []int{4}, 44)
	txn.LookupInsert("cache", 9, 90)
	if txn.Len() != 4 { // combined cell + cell 4 + delete + insert
		t.Errorf("txn staged %d ops, want 4 after write-combining", txn.Len())
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if fake.batches != 1 {
		t.Errorf("commit sent %d batches, want 1", fake.batches)
	}
	if fake.regs["reg_vals"][3] != 100 {
		t.Errorf("combined cell holds %d, want the last value 100", fake.regs["reg_vals"][3])
	}
	if fake.regs["reg_vals"][4] != 44 {
		t.Error("uncombined cell lost its write")
	}
	if es := fake.entries["lu_cache"]; len(es) != 1 || es[0].Action.Args[0] != 90 {
		t.Errorf("lookup insert missing: %+v", es)
	}

	// Sticky resolution errors: nothing reaches the device.
	bad := c.Txn().Write("nosuch", []int{0}, 1).Write("vals", []int{5}, 5)
	if err := bad.Commit(); err == nil {
		t.Error("bad txn must fail at Commit")
	}
	if fake.regs["reg_vals"][5] != 0 {
		t.Error("failed txn must send nothing")
	}
}

func TestHostConnTimeout(t *testing.T) {
	h, err := DialUDP(1, "127.0.0.1:0", "127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Recv(20 * time.Millisecond); err == nil {
		t.Error("expected timeout")
	}
}
