package runtime

import (
	"sync"

	"netcl/internal/metrics"
)

// FlightWindow is the in-flight cap shared by multi-goroutine
// submitters: where Channel pumps its own window from one owner
// goroutine, a FlightWindow lets many producers bound their collective
// outstanding work with blocking Acquire/Release (the load generator's
// Window knob). Occupancy and peak ride the same metrics gauges the
// Channel publishes.
type FlightWindow struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int

	gauge *metrics.Gauge
}

// NewFlightWindow builds a window admitting up to n concurrent
// holders; n <= 0 makes the window unbounded (Acquire never blocks),
// so a zero knob preserves open-throttle behavior. The gauge may be
// nil.
func NewFlightWindow(n int, gauge *metrics.Gauge) *FlightWindow {
	if gauge == nil {
		gauge = &metrics.Gauge{}
	}
	w := &FlightWindow{cap: n, gauge: gauge}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Acquire blocks until a slot is free and takes it. Unbounded windows
// skip the accounting entirely so an open-throttle hot path pays
// nothing.
func (w *FlightWindow) Acquire() {
	if w.cap <= 0 {
		return
	}
	w.mu.Lock()
	for w.used >= w.cap {
		w.cond.Wait()
	}
	w.used++
	w.mu.Unlock()
	w.gauge.Add(1)
}

// Release frees a slot. Safe from completion callbacks on any
// goroutine.
func (w *FlightWindow) Release() {
	if w.cap <= 0 {
		return
	}
	w.mu.Lock()
	w.used--
	w.cond.Signal()
	w.mu.Unlock()
	w.gauge.Add(-1)
}

// Occupancy returns the current holder count.
func (w *FlightWindow) Occupancy() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.used
}

// Peak returns the highest occupancy observed by the gauge.
func (w *FlightWindow) Peak() int { return int(w.gauge.Peak()) }
