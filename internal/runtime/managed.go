package runtime

import (
	"fmt"

	"netcl/internal/ir"
	"netcl/internal/p4"
	"netcl/internal/p4rt"
)

// DeviceConnection mirrors ncl::device_connection: a control-plane
// handle through which host code reads and writes _managed_ memory by
// NetCL-level name and indices (§V-B), without vendor-specific APIs
// (requirement R6). It resolves names against the compiled module's
// memory layout, transparently handling compiler memory partitioning
// (cms[3][65536] → reg_cms__0..2).
type DeviceConnection struct {
	CP   p4rt.Client
	Mems []*ir.MemRef
}

// resolve maps a NetCL memory name plus indices to a register name and
// flat element index.
func (c *DeviceConnection) resolve(name string, idxs []int) (string, *ir.MemRef, int, error) {
	find := func(n string) *ir.MemRef {
		for _, m := range c.Mems {
			if m.Name == n {
				return m
			}
		}
		return nil
	}
	mem := find(name)
	rest := idxs
	if mem == nil && len(idxs) > 0 {
		// Partitioned: the outer dimension became a name suffix.
		mem = find(fmt.Sprintf("%s__%d", name, idxs[0]))
		rest = idxs[1:]
	}
	if mem == nil {
		return "", nil, 0, fmt.Errorf("managed: no memory %q on this device", name)
	}
	if len(rest) != len(mem.Dims) {
		return "", nil, 0, fmt.Errorf("managed: %q needs %d indices, got %d", name, len(mem.Dims), len(rest))
	}
	flat := 0
	for i, ix := range rest {
		if ix < 0 || ix >= mem.Dims[i] {
			return "", nil, 0, fmt.Errorf("managed: index %d out of range [0,%d) for %q", ix, mem.Dims[i], name)
		}
		stride := 1
		for _, d := range mem.Dims[i+1:] {
			stride *= d
		}
		flat += ix * stride
	}
	return "reg_" + mem.Name, mem, flat, nil
}

// memByName locates a memory object (following partition suffixes is
// not needed for lookups, which are never partitioned).
func (c *DeviceConnection) memByName(name string) *ir.MemRef {
	for _, m := range c.Mems {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// ManagedWrite writes one element of managed memory
// (ncl::managed_write).
func (c *DeviceConnection) ManagedWrite(name string, idxs []int, v uint64) error {
	reg, mem, flat, err := c.resolve(name, idxs)
	if err != nil {
		return err
	}
	if !mem.Managed {
		return fmt.Errorf("managed: memory %q is _net_ only; hosts cannot write it", name)
	}
	return c.CP.RegisterWrite(reg, flat, v)
}

// ManagedRead reads one element of managed memory (ncl::managed_read).
func (c *DeviceConnection) ManagedRead(name string, idxs []int) (uint64, error) {
	reg, _, flat, err := c.resolve(name, idxs)
	if err != nil {
		return 0, err
	}
	return c.CP.RegisterRead(reg, flat)
}

// lookupEntry builds the replace pair (delete tuple + fresh entry) of
// one lookup-memory binding.
func lookupEntry(mem *ir.MemRef, key, val uint64) *p4.Entry {
	table := "lu_" + mem.Name
	e := &p4.Entry{Keys: []p4.KeyValue{{Value: key, PrefixLen: -1}}}
	if mem.LKind == ir.LookupSet {
		e.Action = &p4.ActionCall{Name: table + "_hit"}
	} else {
		e.Action = &p4.ActionCall{Name: table + "_hit", Args: []uint64{val}}
	}
	return e
}

// lookupMem validates that name is writable managed lookup memory.
func (c *DeviceConnection) lookupMem(name string) (*ir.MemRef, error) {
	mem := c.memByName(name)
	if mem == nil || !mem.IsLookup() {
		return nil, fmt.Errorf("managed: %q is not lookup memory", name)
	}
	if !mem.Managed {
		return nil, fmt.Errorf("managed: lookup memory %q is const (not _managed_)", name)
	}
	return mem, nil
}

// LookupInsert adds (or replaces) an entry in managed lookup memory.
// For kv maps val is the mapped value; for sets it is ignored. The
// delete-then-insert pair rides in one batch, so a concurrent packet
// never observes the key unbound mid-replace.
func (c *DeviceConnection) LookupInsert(name string, key, val uint64) error {
	mem, err := c.lookupMem(name)
	if err != nil {
		return err
	}
	table := "lu_" + name
	b := p4rt.NewWriteBatch().Delete(table, key).Insert(table, lookupEntry(mem, key, val))
	_, err = c.CP.Write(b)
	return err
}

// LookupDelete removes entries matching key from managed lookup
// memory, returning how many were removed.
func (c *DeviceConnection) LookupDelete(name string, key uint64) (int, error) {
	mem := c.memByName(name)
	if mem == nil || !mem.IsLookup() || !mem.Managed {
		return 0, fmt.Errorf("managed: %q is not managed lookup memory", name)
	}
	return c.CP.DeleteEntry("lu_"+name, key)
}

// ManagedTxn accumulates managed-memory mutations — register writes,
// lookup inserts and deletes — into one transactional batch, applied
// all-or-nothing by Commit. Repeated writes to the same register cell
// write-combine (the last value wins), collapsing `_managed_` mirror
// traffic to one op per touched cell. Resolution errors are sticky:
// they surface at Commit and nothing is sent.
type ManagedTxn struct {
	c   *DeviceConnection
	b   *p4rt.WriteBatch
	err error
}

// Txn starts an empty managed-memory transaction.
func (c *DeviceConnection) Txn() *ManagedTxn {
	return &ManagedTxn{c: c, b: p4rt.NewWriteBatch()}
}

// Write stages one managed-memory element write (ManagedWrite).
func (t *ManagedTxn) Write(name string, idxs []int, v uint64) *ManagedTxn {
	if t.err != nil {
		return t
	}
	reg, mem, flat, err := t.c.resolve(name, idxs)
	if err != nil {
		t.err = err
		return t
	}
	if !mem.Managed {
		t.err = fmt.Errorf("managed: memory %q is _net_ only; hosts cannot write it", name)
		return t
	}
	t.b.RegisterWrite(reg, flat, v)
	return t
}

// LookupInsert stages a lookup-memory replace (LookupInsert).
func (t *ManagedTxn) LookupInsert(name string, key, val uint64) *ManagedTxn {
	if t.err != nil {
		return t
	}
	mem, err := t.c.lookupMem(name)
	if err != nil {
		t.err = err
		return t
	}
	table := "lu_" + name
	t.b.Delete(table, key).Insert(table, lookupEntry(mem, key, val))
	return t
}

// LookupDelete stages a lookup-memory delete.
func (t *ManagedTxn) LookupDelete(name string, key uint64) *ManagedTxn {
	if t.err != nil {
		return t
	}
	if _, err := t.c.lookupMem(name); err != nil {
		t.err = err
		return t
	}
	t.b.Delete("lu_"+name, key)
	return t
}

// Len reports the number of staged ops after write-combining.
func (t *ManagedTxn) Len() int { return t.b.Len() }

// Commit applies the transaction in one batch. On error nothing took
// effect on the device.
func (t *ManagedTxn) Commit() error {
	if t.err != nil {
		return t.err
	}
	_, err := t.c.CP.Write(t.b)
	return err
}
