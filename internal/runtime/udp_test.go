package runtime

import (
	"testing"
	"time"

	"netcl/internal/passes"
	"netcl/internal/testutil"
	"netcl/internal/wire"
)

// TestUDPDeviceEndToEnd runs the full UDP backend on loopback: a host
// sends a NetCL message to a device process, the kernel bumps a
// managed counter and reflects, and the host unpacks the reply — the
// Figure 6 workflow over real sockets.
func TestUDPDeviceEndToEnd(t *testing.T) {
	prog, mod, err := testutil.CompileOne(testutil.CounterKernel, passes.TargetTNA, 5)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ServeUDPDevice(5, "127.0.0.1:0", prog)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	host, err := DialUDP(1, "127.0.0.1:0", dev.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	if err := dev.SetNodeAddr(1, host.Addr()); err != nil {
		t.Fatal(err)
	}

	spec := &MessageSpec{Comp: 1, Args: []ArgSpec{
		{Name: "slot", Bytes: 4, Count: 1},
		{Name: "count", Bytes: 4, Count: 1, Out: true},
	}}
	for want := uint64(1); want <= 3; want++ {
		err := host.SendMessage(spec, Message{Src: 1, Dst: 2, Device: 5, Comp: 1},
			[][]uint64{{7}, nil})
		if err != nil {
			t.Fatal(err)
		}
		count := make([]uint64, 1)
		hdr, err := host.RecvMessage(spec, [][]uint64{nil, count}, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Act != wire.ActReflect || count[0] != want {
			t.Fatalf("reply %d: act=%s count=%d", want, wire.ActionName(int(hdr.Act)), count[0])
		}
	}

	// Managed memory over the device's control-plane interface.
	conn := &DeviceConnection{CP: dev, Mems: mod.Mems}
	v, err := conn.ManagedRead("hits", []int{7})
	if err != nil || v != 3 {
		t.Fatalf("managed read: %d %v", v, err)
	}
	if err := conn.ManagedWrite("hits", []int{7}, 0); err != nil {
		t.Fatal(err)
	}
	v, _ = conn.ManagedRead("hits", []int{7})
	if v != 0 {
		t.Fatalf("managed reset failed: %d", v)
	}
}
