package runtime

import (
	"math"
	"testing"
)

// TestSeqWindowBasic: fresh sequences pass once and repeat as
// duplicates, in order or slightly out of order.
func TestSeqWindowBasic(t *testing.T) {
	w := &seqWindow{bits: make([]uint64, 2)} // 128-seq window
	for _, seq := range []uint32{1, 2, 3, 5, 4, 10, 7} {
		if w.observe(seq) {
			t.Errorf("seq %d reported duplicate on first sight", seq)
		}
	}
	for _, seq := range []uint32{1, 2, 3, 4, 5, 7, 10} {
		if !w.observe(seq) {
			t.Errorf("seq %d not reported duplicate on second sight", seq)
		}
	}
	// 6, 8, 9 were never observed and are still inside the window.
	for _, seq := range []uint32{6, 8, 9} {
		if w.observe(seq) {
			t.Errorf("unseen in-window seq %d reported duplicate", seq)
		}
	}
}

// TestSeqWindowEviction: sequences older than the window are treated
// as duplicates (the window is the receiver's entire memory), and
// advancing the anchor evicts old state so a bit index is never
// aliased to a newer sequence.
func TestSeqWindowEviction(t *testing.T) {
	w := &seqWindow{bits: make([]uint64, 1)} // 64-seq window
	if w.observe(1000) {
		t.Fatal("first observation reported duplicate")
	}
	if !w.observe(1000 - 64) {
		t.Error("seq older than the window must be treated as duplicate")
	}
	if w.observe(1000 - 63) {
		t.Error("oldest in-window seq reported duplicate though never seen")
	}
	// Slide far forward: everything before must be forgotten (evicted),
	// and the evicted seqs now classify as too-old duplicates.
	if w.observe(5000) {
		t.Fatal("fresh high seq reported duplicate")
	}
	if !w.observe(1000) {
		t.Error("evicted seq must classify as too-old duplicate")
	}
	if w.observe(5000 - 1) {
		t.Error("in-window seq near new anchor reported duplicate; stale bits survived the shift")
	}
}

// TestSeqWindowShiftCarry: shifting by a non-multiple of 64 must carry
// bits across word boundaries.
func TestSeqWindowShiftCarry(t *testing.T) {
	w := &seqWindow{bits: make([]uint64, 2)} // 128-seq window
	w.observe(100)
	w.observe(70)
	// Advance by 60: 100 lands at offset 60 (word 0), 70 at offset 90
	// (word 1) — both cross into higher bit positions.
	w.observe(160)
	if !w.observe(100) || !w.observe(70) {
		t.Error("seen seqs lost across a sub-word shift")
	}
	if w.observe(99) || w.observe(71) {
		t.Error("neighbor seqs falsely marked seen after shift")
	}
}

// TestSeqWindowWraparound: the serial-number arithmetic keeps the
// window well-defined across the uint32 wrap.
func TestSeqWindowWraparound(t *testing.T) {
	w := &seqWindow{bits: make([]uint64, 1)}
	pre := []uint32{math.MaxUint32 - 2, math.MaxUint32 - 1, math.MaxUint32}
	post := []uint32{0, 1, 2}
	for _, seq := range pre {
		if w.observe(seq) {
			t.Errorf("seq %d duplicate on first sight", seq)
		}
	}
	for _, seq := range post {
		if w.observe(seq) {
			t.Errorf("post-wrap seq %d duplicate on first sight", seq)
		}
	}
	// All six remain within the 64-seq window and must read as seen.
	for _, seq := range append(append([]uint32{}, pre...), post...) {
		if !w.observe(seq) {
			t.Errorf("seq %d not duplicate across the wrap", seq)
		}
	}
	// A gap that wraps: unseen seqs stay unseen.
	if w.observe(math.MaxUint32 - 30) {
		t.Error("unseen pre-wrap seq inside window reported duplicate")
	}
}

// TestDedupTablePerSource: windows are independent per source, so the
// same sequence number from different peers never collides.
func TestDedupTablePerSource(t *testing.T) {
	tab := newDedupTable(64)
	if tab.observe(1, 42) {
		t.Error("src 1 seq 42 duplicate on first sight")
	}
	if tab.observe(2, 42) {
		t.Error("src 2 seq 42 duplicate on first sight (cross-source collision)")
	}
	if !tab.observe(1, 42) || !tab.observe(2, 42) {
		t.Error("per-source repeat not reported duplicate")
	}
}

// TestDedupTableWindowRounding: tiny windows round up to one word.
func TestDedupTableWindowRounding(t *testing.T) {
	tab := newDedupTable(0)
	if tab.words != 1 {
		t.Errorf("zero window rounded to %d words, want 1", tab.words)
	}
	tab = newDedupTable(65)
	if tab.words != 2 {
		t.Errorf("65-seq window rounded to %d words, want 2", tab.words)
	}
}
