package runtime

import (
	"bytes"
	"encoding/binary"
	"testing"

	"netcl/internal/wire"
)

// Differential fuzzing of the message codec: Pack against PackAppend
// (fresh buffer vs append-into-pooled-buffer must be byte-identical),
// and Unpack/UnpackInto round-tripping what was packed, including the
// nil-slice conventions (pack zeros, skip on unpack) and short-input
// rejection. The fuzz input is interpreted as a little spec-and-values
// program so the corpus explores layouts, not just payloads.

// fuzzSpec derives a MessageSpec plus argument values from raw bytes.
func fuzzSpec(data []byte) (*MessageSpec, [][]uint64, []byte) {
	if len(data) < 2 {
		return nil, nil, nil
	}
	nargs := int(data[0]%5) + 1 // 1..5 arguments
	sizes := []int{1, 2, 4, 8}
	spec := &MessageSpec{Comp: 1}
	args := make([][]uint64, 0, nargs)
	rest := data[1:]
	take := func() byte {
		if len(rest) == 0 {
			return 0
		}
		b := rest[0]
		rest = rest[1:]
		return b
	}
	for i := 0; i < nargs; i++ {
		ctl := take()
		a := ArgSpec{
			Name:  "a",
			Bytes: sizes[int(ctl)%len(sizes)],
			Count: int(ctl/4)%6 + 1, // 1..6 elements
		}
		spec.Args = append(spec.Args, a)
		if ctl&0x80 != 0 {
			args = append(args, nil) // the NULL convention: pack zeros
			continue
		}
		vals := make([]uint64, a.Count)
		for k := range vals {
			var raw [8]byte
			for b := range raw {
				raw[b] = take()
			}
			vals[k] = binary.BigEndian.Uint64(raw[:])
		}
		args = append(args, vals)
	}
	return spec, args, rest
}

func FuzzPackUnpackRoundTrip(f *testing.F) {
	f.Add([]byte{0x01, 0x03, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0x04, 0x80, 0x07, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x02, 0x15, 0, 0, 0, 0, 0, 0, 0, 0, 0x96})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, args, _ := fuzzSpec(data)
		if spec == nil {
			return
		}
		hdr := Message{Src: 3, Dst: 9, Device: 1, Comp: spec.Comp}.Header()

		packed, err := Pack(spec, hdr, args)
		if err != nil {
			t.Fatalf("Pack rejected a well-formed spec: %v", err)
		}
		if len(packed) != spec.Size() {
			t.Fatalf("packed %d bytes, spec.Size() %d", len(packed), spec.Size())
		}

		// Differential: PackAppend onto a non-empty prefix must append
		// the identical bytes and leave the prefix alone.
		prefix := []byte{0xDE, 0xAD}
		appended, err := PackAppend(append([]byte(nil), prefix...), spec, hdr, args)
		if err != nil {
			t.Fatalf("PackAppend: %v", err)
		}
		if !bytes.Equal(appended[:len(prefix)], prefix) {
			t.Fatal("PackAppend clobbered the prefix")
		}
		if !bytes.Equal(appended[len(prefix):], packed) {
			t.Fatalf("PackAppend diverged from Pack:\n  %x\n  %x", appended[len(prefix):], packed)
		}

		// Round trip through both unpack entry points, with a trailing
		// reliability trailer that both must ignore.
		trailered := wire.Seq{Seq: 7}.Append(append([]byte(nil), packed...))
		out := make([][]uint64, len(spec.Args))
		for i, a := range spec.Args {
			if i%2 == 1 {
				continue // nil slice: skipped on unpack
			}
			out[i] = make([]uint64, a.Count)
		}
		h1, err := Unpack(spec, packed, out)
		if err != nil {
			t.Fatalf("Unpack: %v", err)
		}
		out2 := make([][]uint64, len(spec.Args))
		for i := range out {
			if out[i] != nil {
				out2[i] = make([]uint64, len(out[i]))
			}
		}
		h2, err := UnpackInto(spec, trailered, out2)
		if err != nil {
			t.Fatalf("UnpackInto: %v", err)
		}
		if h1 != h2 || h1.Src != 3 || h1.Dst != 9 {
			t.Fatalf("headers diverged: %+v vs %+v", h1, h2)
		}
		for i := range out {
			if out[i] == nil {
				continue
			}
			a := spec.Args[i]
			mask := ^uint64(0)
			if a.Bytes < 8 {
				mask = 1<<(8*uint(a.Bytes)) - 1
			}
			for k := range out[i] {
				want := uint64(0)
				if args[i] != nil {
					want = args[i][k] & mask
				}
				if out[i][k] != want {
					t.Fatalf("arg %d[%d]: got %#x want %#x", i, k, out[i][k], want)
				}
				if out[i][k] != out2[i][k] {
					t.Fatalf("Unpack and UnpackInto diverged at arg %d[%d]", i, k)
				}
			}
		}

		// Truncations must reject without panicking, on every length.
		for cut := 0; cut < len(packed); cut++ {
			if _, err := UnpackInto(spec, packed[:cut], out); err == nil {
				t.Fatalf("truncated message (%d/%d bytes) accepted", cut, len(packed))
			}
		}
	})
}

// FuzzUnpackIntoRaw feeds arbitrary bytes straight into the parser:
// whatever the input, it must never panic and never write outside the
// provided slices.
func FuzzUnpackIntoRaw(f *testing.F) {
	f.Add([]byte{}, byte(1))
	f.Add(bytes.Repeat([]byte{0xFF}, 40), byte(2))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, nargs byte) {
		spec := &MessageSpec{Comp: 1}
		args := make([][]uint64, int(nargs)%4)
		for i := range args {
			spec.Args = append(spec.Args, ArgSpec{Name: "x", Bytes: 4, Count: 2})
			if i%2 == 0 {
				args[i] = make([]uint64, 2)
			}
		}
		_, _ = UnpackInto(spec, data, args)
	})
}

// TestPackArgumentValidation pins the codec's error paths: wrong slot
// counts and wrong element counts are rejected by both pack variants,
// and nil-slice packing really writes zeros.
func TestPackArgumentValidation(t *testing.T) {
	spec := &MessageSpec{Comp: 1, Args: []ArgSpec{
		{Name: "a", Bytes: 4, Count: 2},
		{Name: "b", Bytes: 1, Count: 1},
	}}
	hdr := Message{Src: 1, Dst: 2, Device: 1, Comp: 1}.Header()
	if _, err := Pack(spec, hdr, [][]uint64{{1, 2}}); err == nil {
		t.Error("slot-count mismatch accepted by Pack")
	}
	if _, err := PackAppend(nil, spec, hdr, [][]uint64{{1, 2}, {3}, {4}}); err == nil {
		t.Error("slot-count mismatch accepted by PackAppend")
	}
	if _, err := Pack(spec, hdr, [][]uint64{{1}, {3}}); err == nil {
		t.Error("element-count mismatch accepted")
	}
	msg, err := Pack(spec, hdr, [][]uint64{nil, {0xAB}})
	if err != nil {
		t.Fatal(err)
	}
	for i := wire.HeaderBytes; i < wire.HeaderBytes+8; i++ {
		if msg[i] != 0 {
			t.Fatalf("nil arg byte %d = %#x, want zero", i, msg[i])
		}
	}
	if msg[wire.HeaderBytes+8] != 0xAB {
		t.Errorf("second arg = %#x, want 0xAB", msg[wire.HeaderBytes+8])
	}
}
