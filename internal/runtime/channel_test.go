package runtime

import (
	"errors"
	"testing"
	"time"

	"netcl/internal/metrics"
	"netcl/internal/wire"
)

// fakeBatchTransport is fakeTransport plus the batching extension, so
// tests can observe retransmission batches.
type fakeBatchTransport struct {
	fakeTransport
	batches [][]int // sizes of each SendBatch call
}

func (f *fakeBatchTransport) SendBatch(msgs [][]byte) error {
	f.batches = append(f.batches, []int{len(msgs)})
	for _, m := range msgs {
		if err := f.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// echoTransport wires onSend to reflect every message back, the
// fake-device behavior (trailer rides along untouched).
func echoTransport() *fakeTransport {
	ft := &fakeTransport{}
	ft.onSend = func(f *fakeTransport, msg []byte) {
		f.inbox = append(f.inbox, msg)
	}
	return ft
}

// TestChannelCallPipelined issues more calls than the window and
// checks every response lands on its own Pending, with occupancy
// capped at the window.
func TestChannelCallPipelined(t *testing.T) {
	ft := echoTransport()
	ch := NewChannel(ft, ChannelConfig{Window: 4, Reliability: ReliabilityConfig{Timeout: time.Millisecond}})
	defer ch.Close()
	const ops = 10
	pend := make([]*Pending, ops)
	for i := 0; i < ops; i++ {
		var err error
		pend[i], err = ch.CallAsync(testMsg(1, 2, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pend {
		resp, err := p.Wait(0)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp[wire.HeaderBytes] != byte(i) {
			t.Errorf("call %d answered with %#x", i, resp[wire.HeaderBytes])
		}
	}
	st := ch.Stats()
	if st.Sent != ops || st.Completed != ops || st.Retransmits != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.PeakInFlight > 4 {
		t.Errorf("window 4 overshot: peak %d in flight", st.PeakInFlight)
	}
	if st.InFlight != 0 {
		t.Errorf("window not drained: %d in flight", st.InFlight)
	}
}

// TestChannelBackoffBudget pins the retransmission schedule to the
// stop-and-wait contract: per-attempt timeouts 1, 2, 4ms then capped
// at 5ms, four transmissions total, failing at 12ms virtual time.
func TestChannelBackoffBudget(t *testing.T) {
	ft := &fakeTransport{}
	ch := NewChannel(ft, ChannelConfig{Window: 1, Reliability: ReliabilityConfig{
		Timeout: time.Millisecond, MaxRetries: 3, MaxTimeout: 5 * time.Millisecond,
	}})
	defer ch.Close()
	p, err := ch.CallAsync(testMsg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(0); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("want ErrRetryBudget, got %v", err)
	}
	if want := (1 + 2 + 4 + 5) * time.Millisecond; ft.now != want {
		t.Errorf("virtual time %v, want %v", ft.now, want)
	}
	if ft.sends != 4 {
		t.Errorf("%d sends, want 4", ft.sends)
	}
	st := ch.Stats()
	if st.Failures != 1 || st.Retransmits != 3 || st.Timeouts != 4 {
		t.Errorf("stats %+v", st)
	}
	if ch.Err() == nil {
		t.Error("budget failure did not stick")
	}
}

// TestChannelFixedBackoff: a Backoff factor of 1 keeps the cadence
// fixed — the slot-protocol drivers rely on it.
func TestChannelFixedBackoff(t *testing.T) {
	ft := &fakeTransport{}
	ch := NewChannel(ft, ChannelConfig{Window: 1, Reliability: ReliabilityConfig{
		Timeout: 2 * time.Millisecond, MaxRetries: 3, Backoff: 1,
	}})
	defer ch.Close()
	p, _ := ch.CallAsync(testMsg(1, 2))
	if _, err := p.Wait(0); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("want ErrRetryBudget, got %v", err)
	}
	if want := 4 * 2 * time.Millisecond; ft.now != want {
		t.Errorf("virtual time %v, want %v (fixed 2ms cadence)", ft.now, want)
	}
}

// TestChannelPostComplete: posted entries retransmit until the
// application resolves them by token; unknown tokens report false.
func TestChannelPostComplete(t *testing.T) {
	ft := &fakeTransport{}
	ch := NewChannel(ft, ChannelConfig{Window: 2, Reliability: ReliabilityConfig{Timeout: time.Millisecond}})
	defer ch.Close()
	if err := ch.Post(100, testMsg(1, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ch.Post(200, testMsg(1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if ch.Complete(999) {
		t.Error("unknown token completed")
	}
	if !ch.Complete(100) || !ch.Complete(200) {
		t.Error("posted tokens did not complete")
	}
	if ch.Complete(100) {
		t.Error("token completed twice")
	}
	if err := ch.Drain(0); err != nil {
		t.Fatal(err)
	}
	st := ch.Stats()
	if st.Completed != 2 || st.InFlight != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestChannelPostRetransmits: an unresolved posted entry rides the
// shared timer, then exhausts its budget into the sticky error that
// Recv and Drain surface.
func TestChannelPostRetransmits(t *testing.T) {
	ft := &fakeTransport{}
	ch := NewChannel(ft, ChannelConfig{Window: 1, Reliability: ReliabilityConfig{
		Timeout: time.Millisecond, MaxRetries: 2, Backoff: 1,
	}})
	defer ch.Close()
	if err := ch.Post(7, testMsg(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := ch.Drain(0); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("want ErrRetryBudget from Drain, got %v", err)
	}
	if ft.sends != 3 {
		t.Errorf("%d sends, want 3 (1 + 2 retries)", ft.sends)
	}
	if _, err := ch.Recv(time.Millisecond); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("want sticky ErrRetryBudget from Recv, got %v", err)
	}
}

// TestChannelSendReliableAck: the ack completes the entry; the ack
// itself is counted.
func TestChannelSendReliableAck(t *testing.T) {
	ft := &fakeTransport{}
	ft.onSend = func(f *fakeTransport, msg []byte) {
		body, sq, ok := wire.ParseSeq(msg)
		if !ok || sq.Flags&wire.SeqFlagWantAck == 0 {
			t.Errorf("reliable send lacks WantAck: %x", msg)
			return
		}
		f.inbox = append(f.inbox, wire.Seq{Seq: sq.Seq, Flags: wire.SeqFlagAck}.Append(body))
	}
	ch := NewChannel(ft, ChannelConfig{Window: 2, Reliability: ReliabilityConfig{Timeout: time.Millisecond}})
	defer ch.Close()
	p, err := ch.SendReliable(testMsg(1, 2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(0); err != nil {
		t.Fatal(err)
	}
	if st := ch.Stats(); st.AcksReceived != 1 || st.Retransmits != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestChannelDuplicateResponses: a device echoing twice completes the
// call once; the duplicate is suppressed by the anti-replay window,
// not delivered.
func TestChannelDuplicateResponses(t *testing.T) {
	ft := &fakeTransport{}
	ft.onSend = func(f *fakeTransport, msg []byte) {
		f.inbox = append(f.inbox, msg, append([]byte(nil), msg...))
	}
	ch := NewChannel(ft, ChannelConfig{Window: 1, Reliability: ReliabilityConfig{Timeout: time.Millisecond}})
	defer ch.Close()
	if _, err := ch.Call(testMsg(1, 2, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Recv(time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("duplicate response leaked out of Recv: %v", err)
	}
	if st := ch.Stats(); st.Duplicates != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestChannelRecvAcksInbound: inbound WantAck traffic is delivered
// once and acknowledged on every copy.
func TestChannelRecvAcksInbound(t *testing.T) {
	ft := &fakeTransport{}
	var acks [][]byte
	ft.onSend = func(f *fakeTransport, msg []byte) { acks = append(acks, msg) }
	inbound := wire.Seq{Seq: 77, Flags: wire.SeqFlagWantAck}.Append(testMsg(3, 1, 5))
	ft.inbox = append(ft.inbox, inbound, append([]byte(nil), inbound...))

	ch := NewChannel(ft, ChannelConfig{Window: 1})
	defer ch.Close()
	body, err := ch.Recv(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if body[wire.HeaderBytes] != 5 {
		t.Errorf("body %x", body)
	}
	if _, err := ch.Recv(time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("duplicate delivered: %v", err)
	}
	if len(acks) != 2 {
		t.Fatalf("%d acks sent, want 2", len(acks))
	}
	ackBody, sq, ok := wire.ParseSeq(acks[0])
	if !ok || sq.Seq != 77 || sq.Flags&wire.SeqFlagAck == 0 {
		t.Fatalf("not an ack of 77: %x", acks[0])
	}
	var hdr wire.Header
	if _, ok := hdr.Unmarshal(ackBody); !ok || hdr.Src != 1 || hdr.Dst != 3 || hdr.To != wire.None {
		t.Errorf("ack header wrong: %+v", hdr)
	}
}

// TestChannelPassthrough: untrailered inbound messages reach the
// application unchanged.
func TestChannelPassthrough(t *testing.T) {
	ft := &fakeTransport{}
	plain := testMsg(3, 1, 1, 2, 3)
	ft.inbox = append(ft.inbox, append([]byte(nil), plain...))
	ch := NewChannel(ft, ChannelConfig{Window: 1})
	defer ch.Close()
	got, err := ch.Recv(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(plain) {
		t.Errorf("passthrough mangled: %x vs %x", got, plain)
	}
}

// TestChannelBatchedRetransmits: entries due together go out through
// one SendBatch call when the transport supports it.
func TestChannelBatchedRetransmits(t *testing.T) {
	ft := &fakeBatchTransport{}
	ch := NewChannel(ft, ChannelConfig{Window: 4, Reliability: ReliabilityConfig{
		Timeout: time.Millisecond, MaxRetries: 1, Backoff: 1,
	}})
	defer ch.Close()
	for i := 0; i < 3; i++ {
		if err := ch.Post(uint64(i), testMsg(1, 2, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Advance past the shared deadline: all three retransmit as one
	// batch (initial transmissions go out individually from admit).
	ch.Drain(0)
	found := false
	for _, b := range ft.batches {
		if b[0] == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("no 3-message retransmission batch; batches %v", ft.batches)
	}
	if st := ch.Stats(); st.Retransmits != 3 {
		t.Errorf("stats %+v", st)
	}
}

// TestChannelCloseAbandons: Close resolves pending entries with
// ErrWindowClosed without making it sticky.
func TestChannelCloseAbandons(t *testing.T) {
	ft := &fakeTransport{}
	ch := NewChannel(ft, ChannelConfig{Window: 2, Reliability: ReliabilityConfig{Timeout: time.Second}})
	p, err := ch.CallAsync(testMsg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	ch.Close()
	if _, err := p.Wait(0); !errors.Is(err, ErrWindowClosed) {
		t.Fatalf("want ErrWindowClosed, got %v", err)
	}
	if _, err := ch.CallAsync(testMsg(1, 2)); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("send on closed channel: %v", err)
	}
	if err := ch.Err(); err != nil {
		t.Errorf("abandonment stuck as channel error: %v", err)
	}
}

// TestChannelGauges: the in-flight gauge tracks occupancy and peak in
// a shared metrics set under the channel's name.
func TestChannelGauges(t *testing.T) {
	ft := echoTransport()
	set := metrics.NewSet()
	ch := NewChannel(ft, ChannelConfig{
		Window: 3, Name: "test", Metrics: set,
		Reliability: ReliabilityConfig{Timeout: time.Millisecond},
	})
	defer ch.Close()
	pend := make([]*Pending, 6)
	for i := range pend {
		var err error
		if pend[i], err = ch.CallAsync(testMsg(1, 2, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pend {
		if _, err := p.Wait(0); err != nil {
			t.Fatal(err)
		}
	}
	g := set.Gauge("test.inflight")
	if g.Value() != 0 {
		t.Errorf("in-flight gauge %d after drain, want 0", g.Value())
	}
	if g.Peak() < 1 || g.Peak() > 3 {
		t.Errorf("in-flight peak %d, want within (0,3]", g.Peak())
	}
}
