package runtime

import (
	"errors"
	"testing"
	"time"

	"netcl/internal/wire"
)

// fakeTransport drives the reliability policy without sockets or
// timers: Send hands the message to a scripted responder, Recv pops
// the inbox or advances a virtual clock by the timeout. Deterministic
// and instant, whatever the configured timeouts.
type fakeTransport struct {
	now    time.Duration
	inbox  [][]byte
	onSend func(f *fakeTransport, msg []byte)
	sends  int
}

func (f *fakeTransport) Send(msg []byte) error {
	f.sends++
	if f.onSend != nil {
		f.onSend(f, append([]byte(nil), msg...))
	}
	return nil
}

func (f *fakeTransport) Recv(timeout time.Duration) ([]byte, error) {
	if len(f.inbox) == 0 {
		f.now += timeout
		return nil, ErrTimeout
	}
	f.now += time.Microsecond
	m := f.inbox[0]
	f.inbox = f.inbox[1:]
	return m, nil
}

func (f *fakeTransport) Now() time.Duration { return f.now }

func testMsg(src, dst uint16, data ...byte) []byte {
	h := wire.Header{Src: src, Dst: dst, From: wire.None, To: 5, Comp: 1}
	return append(h.Marshal(nil), data...)
}

// TestCallRetransmitsUntilResponse drops the first two requests; the
// third send is echoed back (a device reflect carries the trailer
// untouched), and Call must deliver its body.
func TestCallRetransmitsUntilResponse(t *testing.T) {
	ft := &fakeTransport{}
	ft.onSend = func(f *fakeTransport, msg []byte) {
		if f.sends >= 3 {
			f.inbox = append(f.inbox, msg) // device-style echo, trailer intact
		}
	}
	r := NewReliability(ReliabilityConfig{Timeout: time.Millisecond})
	body, err := r.Call(ft, testMsg(1, 2, 0xAB), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != wire.HeaderBytes+1 || body[wire.HeaderBytes] != 0xAB {
		t.Errorf("body %x", body)
	}
	st := r.Stats()
	if st.Retransmits != 2 || st.Timeouts != 2 || st.Sent != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestCallSuppressesDuplicateResponses echoes every request twice; the
// duplicate must neither satisfy a later call nor leak out of Recv.
func TestCallSuppressesDuplicateResponses(t *testing.T) {
	ft := &fakeTransport{}
	ft.onSend = func(f *fakeTransport, msg []byte) {
		f.inbox = append(f.inbox, msg, append([]byte(nil), msg...))
	}
	r := NewReliability(ReliabilityConfig{Timeout: time.Millisecond})
	if _, err := r.Call(ft, testMsg(1, 2, 1), 0); err != nil {
		t.Fatal(err)
	}
	// The duplicate echo is still queued; a Recv must suppress it.
	if _, err := r.Recv(ft, time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("duplicate leaked through Recv: %v", err)
	}
	if st := r.Stats(); st.Duplicates != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestCallExponentialBackoff checks the virtual-time spacing of
// retransmissions: 1ms, 2ms, 4ms, capped by MaxTimeout at 5ms.
func TestCallExponentialBackoff(t *testing.T) {
	ft := &fakeTransport{}
	r := NewReliability(ReliabilityConfig{
		Timeout: time.Millisecond, MaxRetries: 3, MaxTimeout: 5 * time.Millisecond,
	})
	_, err := r.Call(ft, testMsg(1, 2), 0)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("want ErrRetryBudget, got %v", err)
	}
	if want := (1 + 2 + 4 + 5) * time.Millisecond; ft.now != want {
		t.Errorf("virtual time %v, want %v", ft.now, want)
	}
	if ft.sends != 4 {
		t.Errorf("%d sends, want 4", ft.sends)
	}
	if st := r.Stats(); st.Failures != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestSendReliableAcked: the responder host acknowledges, completing
// the one-way delivery.
func TestSendReliableAcked(t *testing.T) {
	ft := &fakeTransport{}
	ft.onSend = func(f *fakeTransport, msg []byte) {
		body, sq, ok := wire.ParseSeq(msg)
		if !ok || sq.Flags&wire.SeqFlagWantAck == 0 {
			t.Errorf("reliable send lacks WantAck: %x", msg)
			return
		}
		f.inbox = append(f.inbox, wire.Seq{Seq: sq.Seq, Flags: wire.SeqFlagAck}.Append(body))
	}
	r := NewReliability(ReliabilityConfig{Timeout: time.Millisecond})
	if err := r.SendReliable(ft, testMsg(1, 2, 9), 0); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.AcksReceived != 1 || st.Retransmits != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestSendReliableBudget: no ack ever arrives; the budget must bound
// the retries and surface ErrRetryBudget.
func TestSendReliableBudget(t *testing.T) {
	ft := &fakeTransport{}
	r := NewReliability(ReliabilityConfig{Timeout: time.Millisecond, MaxRetries: 2})
	err := r.SendReliable(ft, testMsg(1, 2), 0)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("want ErrRetryBudget, got %v", err)
	}
	if ft.sends != 3 {
		t.Errorf("%d sends, want 3 (1 + 2 retries)", ft.sends)
	}
}

// TestRecvAcksAndDedups: a WantAck message is delivered once and
// acknowledged on every copy (the previous ack may be the one lost).
func TestRecvAcksAndDedups(t *testing.T) {
	ft := &fakeTransport{}
	var acks [][]byte
	ft.onSend = func(f *fakeTransport, msg []byte) { acks = append(acks, msg) }
	inbound := wire.Seq{Seq: 77, Flags: wire.SeqFlagWantAck}.Append(testMsg(3, 1, 5))
	ft.inbox = append(ft.inbox, inbound, append([]byte(nil), inbound...))

	r := NewReliability(ReliabilityConfig{})
	body, err := r.Recv(ft, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if body[wire.HeaderBytes] != 5 {
		t.Errorf("body %x", body)
	}
	// The duplicate copy: suppressed, but still acknowledged.
	if _, err := r.Recv(ft, time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("duplicate delivered: %v", err)
	}
	if len(acks) != 2 {
		t.Fatalf("%d acks sent, want 2", len(acks))
	}
	body, sq, ok := wire.ParseSeq(acks[0])
	if !ok || sq.Seq != 77 || sq.Flags&wire.SeqFlagAck == 0 {
		t.Fatalf("not an ack of 77: %x", acks[0])
	}
	var hdr wire.Header
	if _, ok := hdr.Unmarshal(body); !ok || hdr.Src != 1 || hdr.Dst != 3 {
		t.Errorf("ack header not swapped: %+v", hdr)
	}
	if hdr.To != wire.None {
		t.Errorf("ack would invoke a kernel: to=%d", hdr.To)
	}
}

// TestRecvPassthrough: untrailered messages reach the application
// unchanged — the pre-reliability wire format keeps working.
func TestRecvPassthrough(t *testing.T) {
	ft := &fakeTransport{}
	plain := testMsg(3, 1, 1, 2, 3)
	ft.inbox = append(ft.inbox, append([]byte(nil), plain...))
	r := NewReliability(ReliabilityConfig{})
	got, err := r.Recv(ft, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(plain) {
		t.Errorf("passthrough mangled: %x vs %x", got, plain)
	}
}
