package runtime

import (
	"errors"
	"sync"
	"testing"
	"time"

	"netcl/internal/passes"
	"netcl/internal/testutil"
	"netcl/internal/wire"
)

// Compile-time check: both backends present the same Endpoint surface.
var _ Endpoint = (*HostConn)(nil)

func echoUDP(t *testing.T, faults FaultSpec) (*UDPDevice, *HostConn, *MessageSpec) {
	t.Helper()
	prog, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, 5)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ServeDevice(DeviceConfig{ID: 5, Addr: "127.0.0.1:0", Prog: prog, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	host, err := Dial(DialConfig{
		ID: 1, Local: "127.0.0.1:0", Device: dev.Addr(),
		Reliability: ReliabilityConfig{Timeout: 10 * time.Millisecond, MaxRetries: 24},
	})
	if err != nil {
		dev.Close()
		t.Fatal(err)
	}
	if err := dev.SetNodeAddr(1, host.Addr()); err != nil {
		host.Close()
		dev.Close()
		t.Fatal(err)
	}
	spec := &MessageSpec{Comp: 1, Args: []ArgSpec{{Name: "x", Bytes: 4, Count: 1, Out: true}}}
	return dev, host, spec
}

// TestUDPCallUnderLoss drives the reliable Call path through a device
// that drops 30% of all datagrams (seeded): every call must still
// return the correct kernel result.
func TestUDPCallUnderLoss(t *testing.T) {
	dev, host, spec := echoUDP(t, FaultSpec{LossRate: 0.3, Seed: 7})
	defer host.Close()
	for i := 0; i < 8; i++ {
		x := make([]uint64, 1)
		hdr, err := host.CallMessage(spec, Message{Src: 1, Dst: 2, Device: 5, Comp: 1},
			[][]uint64{{uint64(10 * i)}}, [][]uint64{x}, 0)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if x[0] != uint64(10*i)+1 {
			t.Errorf("call %d: echo %d, want %d", i, x[0], 10*i+1)
		}
		if hdr.From != 5 {
			t.Errorf("call %d: reflected by %d", i, hdr.From)
		}
	}
	dev.Close() // joins the device loop, settling fault counters
	if dev.FaultDropped == 0 {
		t.Error("30% loss over dozens of datagrams dropped nothing; injection broken")
	}
	if st := host.Stats(); st.Retransmits == 0 {
		t.Errorf("datagrams were dropped but nothing was retransmitted: %+v", st)
	}
}

// TestUDPCallRetryBudgetOnPausedDevice pauses the device (a crashed
// switch): calls must fail fast with ErrRetryBudget, and succeed again
// after Restart with state preserved.
func TestUDPCallRetryBudgetOnPausedDevice(t *testing.T) {
	prog, _, err := testutil.CompileOne(testutil.CounterKernel, passes.TargetTNA, 5)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ServeDevice(DeviceConfig{ID: 5, Addr: "127.0.0.1:0", Prog: prog})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	host, err := Dial(DialConfig{
		ID: 1, Local: "127.0.0.1:0", Device: dev.Addr(),
		Reliability: ReliabilityConfig{Timeout: 5 * time.Millisecond, MaxRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	if err := dev.SetNodeAddr(1, host.Addr()); err != nil {
		t.Fatal(err)
	}
	spec := &MessageSpec{Comp: 1, Args: []ArgSpec{
		{Name: "slot", Bytes: 4, Count: 1},
		{Name: "count", Bytes: 4, Count: 1, Out: true},
	}}
	call := func() (uint64, error) {
		count := make([]uint64, 1)
		_, err := host.CallMessage(spec, Message{Src: 1, Dst: 2, Device: 5, Comp: 1},
			[][]uint64{{3}, nil}, [][]uint64{nil, count}, 0)
		return count[0], err
	}
	if _, err := call(); err != nil {
		t.Fatalf("healthy device: %v", err)
	}
	dev.Pause()
	if _, err := call(); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("paused device: want ErrRetryBudget, got %v", err)
	}
	dev.Restart()
	got, err := call()
	if err != nil {
		t.Fatalf("restarted device: %v", err)
	}
	// Register state survived the outage; the paused attempt never
	// reached the pipeline, so this is increment #2 (possibly more if
	// late retransmits landed after Restart).
	if got < 2 {
		t.Errorf("counter %d after restart, want >= 2", got)
	}
	if st := host.Stats(); st.Failures != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestUDPSendReliableHostToHost runs one-way reliable delivery across
// the device under loss: host 1 → device (forwarding, no kernel) →
// host 2. The ack rides the same path back; duplicate-suppression
// keeps the application delivery exactly-once.
func TestUDPSendReliableHostToHost(t *testing.T) {
	prog, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, 5)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ServeDevice(DeviceConfig{ID: 5, Addr: "127.0.0.1:0", Prog: prog,
		Faults: FaultSpec{LossRate: 0.25, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	h1, err := Dial(DialConfig{
		ID: 1, Local: "127.0.0.1:0", Device: dev.Addr(),
		Reliability: ReliabilityConfig{
			Timeout: 5 * time.Millisecond, MaxRetries: 40, MaxTimeout: 40 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()
	h2, err := Dial(DialConfig{ID: 2, Local: "127.0.0.1:0", Device: dev.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	for id, h := range map[uint16]*HostConn{1: h1, 2: h2} {
		if err := dev.SetNodeAddr(id, h.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// Receiver: Recv acks WantAck messages and suppresses duplicates.
	// It must keep acking until the SENDER is done — an ack can be the
	// datagram that is lost, in which case h1 retransmits a message h2
	// has already delivered, and only a re-ack lets h1 finish.
	var mu sync.Mutex
	var got [][]byte
	senderDone := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := h2.Recv(10 * time.Millisecond)
			if err != nil {
				if IsTimeout(err) {
					select {
					case <-senderDone:
						return // every SendReliable confirmed; safe to stop acking
					default:
						continue
					}
				}
				return
			}
			mu.Lock()
			got = append(got, msg)
			mu.Unlock()
		}
	}()

	spec := &MessageSpec{Comp: 1, Args: []ArgSpec{{Name: "x", Bytes: 4, Count: 1, Out: true}}}
	for i := 0; i < 3; i++ {
		// To=None: the device forwards to host 2 without running kernels.
		hdr := wire.Header{Src: 1, Dst: 2, From: wire.None, To: wire.None, Comp: 1}
		msg, err := Pack(spec, hdr, [][]uint64{{uint64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if err := h1.SendReliable(msg, 0); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	close(senderDone)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("receiver never drained")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("delivered %d messages, want exactly 3 (dedup failed or loss unrecovered)", len(got))
	}
	for i, m := range got {
		x := make([]uint64, 1)
		if _, err := Unpack(spec, m, [][]uint64{x}); err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if x[0] != uint64(i) {
			t.Errorf("msg %d: payload %d (reordered or corrupted)", i, x[0])
		}
	}
}
