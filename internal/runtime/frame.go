package runtime

import "netcl/internal/wire"

// Ethernet/IPv4/UDP framing for NetCL messages (paper Fig. 10). The
// simulator and the UDP backend both carry NetCL messages inside this
// frame so the generated parser's Ethernet→IPv4→UDP→NetCL walk is
// exercised end to end.

const (
	ethBytes  = 14
	ipv4Bytes = 20
	udpBytes  = 8
	// FrameOverhead is the total encapsulation size.
	FrameOverhead = ethBytes + ipv4Bytes + udpBytes
)

// Frame wraps a NetCL message in Ethernet+IPv4+UDP headers addressed
// to the NetCL UDP port. dstMAC/srcMAC occupy the low 48 bits.
func Frame(msg []byte, srcMAC, dstMAC uint64) []byte {
	buf := make([]byte, FrameOverhead+len(msg))
	copy(buf[FrameOverhead:], msg)
	return FrameInPlace(buf, srcMAC, dstMAC)
}

// FrameInPlace writes the encapsulation headers into buf[:FrameOverhead],
// assuming the NetCL message already occupies buf[FrameOverhead:]. It
// returns buf. This is the zero-copy path of the UDP device: datagrams
// are read directly into a pooled buffer at offset FrameOverhead and
// framed without copying the payload.
func FrameInPlace(buf []byte, srcMAC, dstMAC uint64) []byte {
	msgLen := len(buf) - FrameOverhead
	// Ethernet.
	for i := 0; i < 6; i++ {
		buf[i] = byte(dstMAC >> (8 * uint(5-i)))
		buf[6+i] = byte(srcMAC >> (8 * uint(5-i)))
	}
	buf[12], buf[13] = 0x08, 0x00 // IPv4
	// IPv4 (no options, zero checksum; the simulator does not verify).
	totalLen := ipv4Bytes + udpBytes + msgLen
	copy(buf[ethBytes:], []byte{
		0x45, 0x00,
		byte(totalLen >> 8), byte(totalLen),
		0x00, 0x00, // identification
		0x00, 0x00, // flags/frag
		64, 17, // ttl, protocol=UDP
		0x00, 0x00, // checksum
		10, 0, 0, 1, // src ip
		10, 0, 0, 2, // dst ip
	})
	// UDP.
	udpLen := udpBytes + msgLen
	port := uint16(wire.NetCLPort)
	copy(buf[ethBytes+ipv4Bytes:], []byte{
		byte(port >> 8), byte(port),
		byte(port >> 8), byte(port),
		byte(udpLen >> 8), byte(udpLen),
		0x00, 0x00,
	})
	return buf
}

// Deframe strips the Ethernet+IPv4+UDP encapsulation, returning the
// NetCL message and whether the frame was a NetCL frame.
func Deframe(pkt []byte) ([]byte, bool) {
	if len(pkt) < FrameOverhead {
		return nil, false
	}
	if pkt[12] != 0x08 || pkt[13] != 0x00 {
		return nil, false
	}
	if pkt[ethBytes+9] != 17 {
		return nil, false
	}
	udp := pkt[ethBytes+ipv4Bytes:]
	dstPort := uint16(udp[2])<<8 | uint16(udp[3])
	if dstPort != wire.NetCLPort {
		return nil, false
	}
	return pkt[FrameOverhead:], true
}
