// Package runtime implements the NetCL host runtime: NetCL message
// construction (pack/unpack against kernel specifications, §V-A),
// communication backends (in-process simulation and real UDP), and
// managed-memory access through the device control plane (§V-B).
package runtime

import (
	"fmt"

	"netcl/internal/wire"
)

// ArgSpec describes one kernel argument in a message layout.
type ArgSpec struct {
	Name  string
	Bytes int // element size in bytes (1, 2, 4, 8)
	Count int // element count (the specification)
	Out   bool
}

// MessageSpec is a computation's message layout, derived from its
// kernel specification by the compiler and consumed by pack/unpack.
type MessageSpec struct {
	Comp uint8
	Args []ArgSpec
}

// DataBytes is the total payload size of the kernel arguments.
func (s *MessageSpec) DataBytes() int {
	n := 0
	for _, a := range s.Args {
		n += a.Bytes * a.Count
	}
	return n
}

// Size is the full NetCL message size (header + data).
func (s *MessageSpec) Size() int { return wire.HeaderBytes + s.DataBytes() }

// String renders the spec like the paper: [1,2][u32,u8].
func (s *MessageSpec) String() string {
	c, t := "", ""
	for i, a := range s.Args {
		if i > 0 {
			c += ","
			t += ","
		}
		c += fmt.Sprintf("%d", a.Count)
		t += fmt.Sprintf("u%d", a.Bytes*8)
	}
	return "[" + c + "][" + t + "]"
}

// Message mirrors ncl::message: the 4-tuple plus computation id.
type Message struct {
	Src, Dst uint16
	Device   uint16 // requested computing device ("through d")
	Comp     uint8
}

// Header builds the wire header for a fresh message (from = none, to =
// the requested device).
func (m Message) Header() wire.Header {
	return wire.Header{
		Src: m.Src, Dst: m.Dst, From: wire.None, To: m.Device,
		Comp: m.Comp, Act: wire.ActPass, Arg: 0,
	}
}

// Pack serializes a NetCL message (header + kernel arguments) into a
// fresh buffer. args supplies one slice per kernel argument, holding
// Count element values; a nil slice packs zeros (the ncl::pack NULL
// convention that skips copying, §V-A).
func Pack(spec *MessageSpec, hdr wire.Header, args [][]uint64) ([]byte, error) {
	return PackAppend(make([]byte, 0, spec.Size()), spec, hdr, args)
}

// PackAppend serializes a NetCL message at the end of dst, growing it
// like the append builtin. It performs no allocation when dst has
// spec.Size() bytes of spare capacity, which makes it the zero-alloc
// counterpart of Pack for pooled send buffers (see GetBuf/PutBuf).
func PackAppend(dst []byte, spec *MessageSpec, hdr wire.Header, args [][]uint64) ([]byte, error) {
	if len(args) != len(spec.Args) {
		return dst, fmt.Errorf("pack: %d argument slots for %d-argument specification %s", len(args), len(spec.Args), spec)
	}
	buf := hdr.Marshal(dst)
	for i, a := range spec.Args {
		vals := args[i]
		if vals != nil && len(vals) != a.Count {
			return dst, fmt.Errorf("pack: argument %d (%s) needs %d elements, got %d", i, a.Name, a.Count, len(vals))
		}
		for k := 0; k < a.Count; k++ {
			var v uint64
			if vals != nil {
				v = vals[k]
			}
			for b := a.Bytes - 1; b >= 0; b-- {
				buf = append(buf, byte(v>>(8*uint(b))))
			}
		}
	}
	return buf, nil
}

// Unpack parses a NetCL message. Non-nil arg slices receive the
// corresponding element values (they must have the right length); nil
// slices are skipped.
func Unpack(spec *MessageSpec, data []byte, args [][]uint64) (wire.Header, error) {
	return UnpackInto(spec, data, args)
}

// UnpackInto is Unpack under its zero-alloc contract: the element
// values land in the caller-provided arg slices and no memory is
// allocated on any path, success or error, so it is safe on hot
// receive loops with preallocated scratch. Bytes past the data region
// (the payload area, e.g. a reliability trailer) are ignored.
func UnpackInto(spec *MessageSpec, data []byte, args [][]uint64) (wire.Header, error) {
	var hdr wire.Header
	rest, ok := hdr.Unmarshal(data)
	if !ok {
		return hdr, errUnpackShort
	}
	if len(args) != len(spec.Args) {
		return hdr, errUnpackArgSlots
	}
	if len(rest) < spec.DataBytes() {
		return hdr, errUnpackDataShort
	}
	off := 0
	for i, a := range spec.Args {
		vals := args[i]
		if vals != nil && len(vals) != a.Count {
			return hdr, errUnpackArgLen
		}
		for k := 0; k < a.Count; k++ {
			var v uint64
			for b := 0; b < a.Bytes; b++ {
				v = v<<8 | uint64(rest[off+b])
			}
			if vals != nil {
				vals[k] = v
			}
			off += a.Bytes
		}
	}
	return hdr, nil
}

// Unpack error values are fixed instances so the parse path allocates
// nothing even when rejecting malformed input.
var (
	errUnpackShort     = fmt.Errorf("unpack: short message")
	errUnpackArgSlots  = fmt.Errorf("unpack: argument slot count does not match specification")
	errUnpackDataShort = fmt.Errorf("unpack: message data shorter than specification")
	errUnpackArgLen    = fmt.Errorf("unpack: argument slice length does not match element count")
)
