package p4c

import "netcl/internal/p4"

// PHV allocation model: Tofino-1 carries parsed headers, metadata, and
// control-local temporaries in containers of 8, 16, and 32 bits. Each
// field occupies whole containers (fields cannot straddle containers
// in this model, which matches the conservative end of real PHV
// allocation).

// containerBits returns the container capacity consumed by one field.
func containerBits(bits int) int {
	total := 0
	for bits > 0 {
		switch {
		case bits > 16:
			total += 32
			bits -= 32
		case bits > 8:
			total += 16
			bits -= 16
		default:
			total += 8
			bits = 0
		}
	}
	return total
}

// PHVBits computes the PHV container bits demanded by a program:
// every header field, every metadata field, and every control-scope
// local variable.
func PHVBits(prog *p4.Program) int {
	total := 0
	for _, h := range prog.Headers {
		for _, f := range h.Fields {
			total += containerBits(f.Bits)
		}
	}
	for _, f := range prog.Metadata {
		total += containerBits(f.Bits)
	}
	controls := []*p4.Control{prog.Ingress}
	if prog.Egress != nil {
		controls = append(controls, prog.Egress)
	}
	for _, c := range controls {
		if c == nil {
			continue
		}
		for _, l := range c.Locals {
			total += containerBits(l.Bits)
		}
	}
	return total
}

// LocalMemory breaks down the sources of PHV demand the way Table VI
// does: P4-level local variables, header bits, and metadata bits.
type LocalMemory struct {
	LocalVarBits int
	HeaderBits   int
	MetadataBits int
}

// Locals reports the program's local-memory breakdown.
func Locals(prog *p4.Program) LocalMemory {
	var lm LocalMemory
	for _, h := range prog.Headers {
		lm.HeaderBits += h.Bits()
	}
	for _, f := range prog.Metadata {
		lm.MetadataBits += f.Bits
	}
	controls := []*p4.Control{prog.Ingress}
	if prog.Egress != nil {
		controls = append(controls, prog.Egress)
	}
	for _, c := range controls {
		if c == nil {
			continue
		}
		for _, l := range c.Locals {
			lm.LocalVarBits += l.Bits
		}
	}
	return lm
}
