package p4c

import (
	"testing"

	"netcl/internal/p4"
)

// chainProg builds a program whose apply body is a dependence chain of
// n assignments (each reads the previous result).
func chainProg(n int) *p4.Program {
	prog := &p4.Program{Name: "chain", Target: p4.TargetTNA}
	prog.Headers = []*p4.HeaderDecl{{Name: "h", Fields: []*p4.Field{{Name: "x", Bits: 32}}}}
	prog.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{
		{Name: "start", Extracts: []string{"h"}, Next: "accept"},
	}}
	ctl := &p4.Control{Name: "In"}
	var prev p4.Expr = p4.FR("hdr", "h", "x")
	for i := 0; i < n; i++ {
		name := tname(i)
		ctl.Locals = append(ctl.Locals, &p4.Field{Name: name, Bits: 32})
		ctl.Apply = append(ctl.Apply, &p4.Assign{
			LHS: p4.FR(name),
			RHS: &p4.Bin{Op: "+", X: prev, Y: &p4.IntLit{Val: 1, Bits: 32}},
		})
		prev = p4.FR(name)
	}
	prog.Ingress = ctl
	return prog
}

func tname(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestChainStages(t *testing.T) {
	rep := Fit(chainProg(5), Tofino1())
	if !rep.Fits {
		t.Fatalf("should fit: %s", rep.Reason)
	}
	if rep.StagesUsed != 5 {
		t.Errorf("5-deep chain should need 5 stages, got %d", rep.StagesUsed)
	}
	rep = Fit(chainProg(13), Tofino1())
	if rep.Fits {
		t.Error("13-deep chain must not fit 12 stages")
	}
}

func TestIndependentOpsShareStage(t *testing.T) {
	prog := chainProg(1)
	ctl := prog.Ingress
	// Add independent assignments: all can go to stage 0.
	for i := 0; i < 4; i++ {
		name := "ind" + tname(i)
		ctl.Locals = append(ctl.Locals, &p4.Field{Name: name, Bits: 32})
		ctl.Apply = append(ctl.Apply, &p4.Assign{
			LHS: p4.FR(name), RHS: p4.FR("hdr", "h", "x"),
		})
	}
	rep := Fit(prog, Tofino1())
	if rep.StagesUsed != 1 {
		t.Errorf("independent ops should share a stage, got %d stages", rep.StagesUsed)
	}
	if rep.PerStage[0].VLIWSlots != 5 {
		t.Errorf("VLIW slots: %d, want 5", rep.PerStage[0].VLIWSlots)
	}
}

func regProg() *p4.Program {
	prog := chainProg(1)
	ctl := prog.Ingress
	ctl.Registers = []*p4.Register{{Name: "r", Bits: 32, Size: 65536}}
	ctl.RegActs = []*p4.RegisterAction{{
		Name: "bump", Register: "r",
		Body: []p4.Stmt{
			&p4.Assign{LHS: p4.FR("m"), RHS: &p4.Bin{Op: "+", X: p4.FR("m"), Y: &p4.IntLit{Val: 1}}},
			&p4.Assign{LHS: p4.FR("o"), RHS: p4.FR("m")},
		},
	}}
	ctl.Locals = append(ctl.Locals, &p4.Field{Name: "rv", Bits: 32})
	return prog
}

func TestRegisterAccounting(t *testing.T) {
	prog := regProg()
	prog.Ingress.Apply = append(prog.Ingress.Apply, &p4.Assign{
		LHS: p4.FR("rv"),
		RHS: &p4.CallExpr{Recv: "bump", Method: "execute", Args: []p4.Expr{&p4.IntLit{Val: 0, Bits: 32}}},
	})
	rep := Fit(prog, Tofino1())
	if !rep.Fits {
		t.Fatalf("fit: %s", rep.Reason)
	}
	if rep.SALUs != 1 {
		t.Errorf("SALUs: %d", rep.SALUs)
	}
	// 65536 x 32b = 64 rows of 1 word => 64 blocks... (32 bits -> 1
	// word of 128b, 65536/1024 = 64 rows).
	// 65536 cells x 32b pack 4 per 128b row: 65536/4096 = 16 blocks.
	if rep.SRAMBlocks < 16 {
		t.Errorf("register SRAM blocks: %d, want >= 16", rep.SRAMBlocks)
	}
}

func TestRegisterStageConflict(t *testing.T) {
	// Two dependent accesses to the same register cannot be placed.
	prog := regProg()
	ctl := prog.Ingress
	ctl.Apply = append(ctl.Apply,
		&p4.Assign{LHS: p4.FR("rv"),
			RHS: &p4.CallExpr{Recv: "bump", Method: "execute", Args: []p4.Expr{&p4.IntLit{Val: 0, Bits: 32}}}},
		// Second access whose index depends on the first result.
		&p4.Assign{LHS: p4.FR("rv"),
			RHS: &p4.CallExpr{Recv: "bump", Method: "execute", Args: []p4.Expr{p4.FR("rv")}}},
	)
	rep := Fit(prog, Tofino1())
	if rep.Fits {
		t.Error("dependent same-register accesses must fail to fit")
	}
}

func TestExactVsTernaryMemories(t *testing.T) {
	prog := chainProg(1)
	ctl := prog.Ingress
	ctl.Actions = append(ctl.Actions, &p4.ActionDecl{Name: "nop"})
	ctl.Tables = []*p4.Table{
		{
			Name:    "ex",
			Keys:    []*p4.TableKey{{Expr: p4.FR("hdr", "h", "x"), Match: p4.MatchExact}},
			Actions: []string{"nop"},
			Size:    1024,
		},
		{
			Name:    "tern",
			Keys:    []*p4.TableKey{{Expr: p4.FR("hdr", "h", "x"), Match: p4.MatchTernary}},
			Actions: []string{"nop"},
			Size:    512,
		},
	}
	ctl.Apply = append(ctl.Apply,
		&p4.ApplyTable{Table: "ex"},
		&p4.ApplyTable{Table: "tern"},
	)
	rep := Fit(prog, Tofino1())
	if rep.TCAMBlocks == 0 {
		t.Error("ternary table should consume TCAM")
	}
	if rep.SRAMBlocks == 0 {
		t.Error("exact table should consume SRAM")
	}
}

func TestBranchesShareStages(t *testing.T) {
	prog := chainProg(1)
	ctl := prog.Ingress
	ctl.Locals = append(ctl.Locals, &p4.Field{Name: "y", Bits: 32}, &p4.Field{Name: "z", Bits: 32})
	ctl.Apply = []p4.Stmt{
		&p4.If{
			Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "h", "x"), Y: &p4.IntLit{Val: 0, Bits: 32}},
			Then: []p4.Stmt{&p4.Assign{LHS: p4.FR("y"), RHS: &p4.IntLit{Val: 1, Bits: 32}}},
			Else: []p4.Stmt{&p4.Assign{LHS: p4.FR("z"), RHS: &p4.IntLit{Val: 2, Bits: 32}}},
		},
	}
	rep := Fit(prog, Tofino1())
	if rep.StagesUsed != 1 {
		t.Errorf("predicated branches should share stage 0, got %d", rep.StagesUsed)
	}
}

func TestLatencyModel(t *testing.T) {
	opts := Tofino1()
	r1 := Fit(chainProg(1), opts)
	r6 := Fit(chainProg(6), opts)
	if r6.LatencyCycles <= r1.LatencyCycles {
		t.Error("more stages must cost more cycles")
	}
	if r6.LatencyNs >= 1000 {
		t.Errorf("latency should stay under 1us, got %.0fns", r6.LatencyNs)
	}
}

func TestPHVModel(t *testing.T) {
	if got := containerBits(1); got != 8 {
		t.Errorf("1 bit -> %d", got)
	}
	if got := containerBits(16); got != 16 {
		t.Errorf("16 bits -> %d", got)
	}
	if got := containerBits(48); got != 48 {
		t.Errorf("48 bits -> %d (32+16)", got)
	}
	if got := containerBits(33); got != 40 {
		t.Errorf("33 bits -> %d (32+8)", got)
	}
	prog := chainProg(2)
	bits := PHVBits(prog)
	// header x (32) + two 32-bit locals.
	if bits != 96 {
		t.Errorf("PHV bits: %d, want 96", bits)
	}
	lm := Locals(prog)
	if lm.HeaderBits != 32 || lm.LocalVarBits != 64 {
		t.Errorf("locals: %+v", lm)
	}
}

// TestIterativeRegisterFloor: a register touched on two exclusive paths
// whose dependence floors differ must settle at the deeper floor
// (multi-pass placement), not fail.
func TestIterativeRegisterFloor(t *testing.T) {
	prog := chainProg(3) // locals a0(stage0) -> b0(1) -> c0(2)
	ctl := prog.Ingress
	ctl.Registers = append(ctl.Registers, &p4.Register{Name: "rr", Bits: 32, Size: 8})
	ctl.RegActs = append(ctl.RegActs,
		&p4.RegisterAction{Name: "ra1", Register: "rr", Body: []p4.Stmt{
			&p4.Assign{LHS: p4.FR("o"), RHS: p4.FR("m")},
		}},
		&p4.RegisterAction{Name: "ra2", Register: "rr", Body: []p4.Stmt{
			&p4.Assign{LHS: p4.FR("o"), RHS: p4.FR("m")},
		}},
	)
	ctl.Locals = append(ctl.Locals, &p4.Field{Name: "r1", Bits: 32}, &p4.Field{Name: "r2", Bits: 32})
	// Path 1 uses the register early (index available at stage 0);
	// path 2 indexes with the chain result (floor 3).
	ctl.Apply = append(ctl.Apply, &p4.If{
		Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "h", "x"), Y: &p4.IntLit{Val: 0, Bits: 32}},
		Then: []p4.Stmt{&p4.Assign{LHS: p4.FR("r1"),
			RHS: &p4.CallExpr{Recv: "ra1", Method: "execute", Args: []p4.Expr{p4.FR("hdr", "h", "x")}}}},
		Else: []p4.Stmt{&p4.Assign{LHS: p4.FR("r2"),
			RHS: &p4.CallExpr{Recv: "ra2", Method: "execute", Args: []p4.Expr{p4.FR("c0")}}}},
	})
	rep := Fit(prog, Tofino1())
	if !rep.Fits {
		t.Fatalf("iterative floor should converge: %s", rep.Reason)
	}
	// The register must sit in one stage at/after the deep floor.
	placed := -1
	for i, st := range rep.PerStage {
		for _, r := range st.Registers {
			if r == "rr" {
				if placed >= 0 {
					t.Fatal("register placed twice")
				}
				placed = i
			}
		}
	}
	if placed < 3 {
		t.Errorf("register placed at stage %d, want >= 3 (deep-path floor)", placed)
	}
}

// TestVLIWOverflowSpillsStages: more parallel assignments than VLIW
// slots spread across stages instead of failing.
func TestVLIWOverflowSpillsStages(t *testing.T) {
	prog := chainProg(1)
	ctl := prog.Ingress
	opts := Tofino1()
	for i := 0; i < opts.VLIWSlotsPerStage+5; i++ {
		name := "p" + tname(i)
		ctl.Locals = append(ctl.Locals, &p4.Field{Name: name, Bits: 8})
		ctl.Apply = append(ctl.Apply, &p4.Assign{LHS: p4.FR(name), RHS: &p4.IntLit{Val: 1, Bits: 8}})
	}
	rep := Fit(prog, opts)
	if !rep.Fits {
		t.Fatalf("VLIW overflow should spill, not fail: %s", rep.Reason)
	}
	if rep.StagesUsed < 2 {
		t.Errorf("expected spill into a second stage, used %d", rep.StagesUsed)
	}
	if rep.PerStage[0].VLIWSlots > opts.VLIWSlotsPerStage {
		t.Error("stage 0 over capacity")
	}
}

// TestDefaultOptions fills zero options with the Tofino-1 model.
func TestDefaultOptionsApplied(t *testing.T) {
	rep := Fit(chainProg(1), Options{})
	if rep.LatencyCycles == 0 || rep.LatencyNs == 0 {
		t.Error("zero options should default to Tofino1")
	}
}
