// Package p4c models the proprietary Tofino P4 compiler's fitting
// behavior (bf-p4c): it places a P4 program's match-action tables,
// registers, and ALU operations onto the stages of an RMT pipeline,
// accounts per-stage SRAM/TCAM/SALU/VLIW resources and PHV allocation,
// and derives the per-packet latency from the occupied stages — the
// observables the paper evaluates in Tables IV-VI and Figure 13.
//
// The paper treats bf-p4c as a black box ("Tofino's ISA and other
// low-level architectural information needed for code generation are
// proprietary", §VI-B); this package reconstructs the fit-or-reject
// behavior from published RMT architecture descriptions.
package p4c

import (
	"fmt"
	"strings"

	"netcl/internal/p4"
)

// Options describes the target pipeline (defaults model Tofino 1).
type Options struct {
	// Stages is the number of match-action stages per pipe.
	Stages int
	// SRAMBlocksPerStage: 80 blocks of 128b x 1024 entries.
	SRAMBlocksPerStage int
	// TCAMBlocksPerStage: 24 blocks of 44b x 512 entries.
	TCAMBlocksPerStage int
	// SALUsPerStage: 4 stateful ALUs.
	SALUsPerStage int
	// VLIWSlotsPerStage: 32 VLIW instruction words.
	VLIWSlotsPerStage int
	// PHVBits models the packet header vector capacity per gress.
	PHVBits int
	// ClockGHz drives the latency conversion.
	ClockGHz float64
	// CyclesPerStage and FixedCycles (parser+deparser+TM ingress path)
	// drive the per-packet latency model.
	CyclesPerStage int
	FixedCycles    int
}

// Tofino1 returns the default pipeline model.
func Tofino1() Options {
	return Options{
		Stages:             12,
		SRAMBlocksPerStage: 80,
		TCAMBlocksPerStage: 24,
		SALUsPerStage:      4,
		VLIWSlotsPerStage:  32,
		PHVBits:            4096,
		ClockGHz:           1.22,
		CyclesPerStage:     22,
		FixedCycles:        120,
	}
}

// StageUsage reports one stage's resource consumption.
type StageUsage struct {
	SRAMBlocks int
	TCAMBlocks int
	SALUs      int
	VLIWSlots  int
	Tables     []string
	Registers  []string
	// Ops lists the destinations written in this stage (diagnostics).
	Ops []string
}

// Report is the fitting result.
type Report struct {
	Fits   bool
	Reason string // first fitting failure, if any

	StagesUsed int
	PerStage   []StageUsage

	// Pipe totals.
	SRAMBlocks, TCAMBlocks, SALUs, VLIWSlots int

	// Percentages over the whole pipe (like Table V, top half).
	SRAMPct, TCAMPct, SALUPct, VLIWPct float64
	// Worst single-stage percentages (Table V, bottom half).
	WorstSRAMPct, WorstTCAMPct, WorstSALUPct, WorstVLIWPct float64

	// PHV allocation (Table VI).
	PHVBitsUsed int
	PHVPct      float64

	// Latency (Figure 13).
	LatencyCycles int
	LatencyNs     float64
}

// Fit places the program onto the pipeline.
func Fit(prog *p4.Program, opts Options) *Report {
	if opts.Stages == 0 {
		opts = Tofino1()
	}
	// Registers and tables are pinned to single stages, but accesses on
	// different control paths may demand different floors; iterate the
	// placement with accumulated per-object floors until it stabilizes
	// (bf-p4c's table-placement retries behave similarly).
	regFloor := map[string]int{}
	tblFloor := map[string]int{}
	var f *fitter
	for pass := 0; ; pass++ {
		f = &fitter{
			prog: prog, opts: opts,
			lastWrite: map[string]int{}, regStage: map[string]int{},
			tblStage: map[string]int{}, regFloor: regFloor, tblFloor: tblFloor,
			finalPass: pass >= 6,
		}
		f.stmts(prog.Ingress, prog.Ingress.Apply, 0)
		if !f.conflict || pass >= 6 {
			break
		}
	}
	rep := &Report{Fits: true}
	f.rep = rep

	maxStage := f.stmts2Result()
	if f.failure != "" {
		rep.Fits = false
		rep.Reason = f.failure
	}
	rep.StagesUsed = maxStage + 1
	if rep.StagesUsed > opts.Stages {
		rep.Fits = false
		if rep.Reason == "" {
			rep.Reason = fmt.Sprintf("program needs %d stages but the pipe has %d", rep.StagesUsed, opts.Stages)
		}
	}

	// Aggregate resources.
	for len(f.stages) < rep.StagesUsed {
		f.stages = append(f.stages, StageUsage{})
	}
	rep.PerStage = f.stages
	for _, st := range f.stages {
		rep.SRAMBlocks += st.SRAMBlocks
		rep.TCAMBlocks += st.TCAMBlocks
		rep.SALUs += st.SALUs
		rep.VLIWSlots += st.VLIWSlots
	}
	for i, st := range f.stages {
		if st.SRAMBlocks > opts.SRAMBlocksPerStage {
			rep.Fits = false
			if rep.Reason == "" {
				rep.Reason = fmt.Sprintf("stage %d exceeds SRAM (%d > %d blocks)", i, st.SRAMBlocks, opts.SRAMBlocksPerStage)
			}
		}
		if st.TCAMBlocks > opts.TCAMBlocksPerStage {
			rep.Fits = false
			if rep.Reason == "" {
				rep.Reason = fmt.Sprintf("stage %d exceeds TCAM (%d > %d blocks)", i, st.TCAMBlocks, opts.TCAMBlocksPerStage)
			}
		}
		if st.SALUs > opts.SALUsPerStage {
			rep.Fits = false
			if rep.Reason == "" {
				rep.Reason = fmt.Sprintf("stage %d exceeds SALUs (%d > %d)", i, st.SALUs, opts.SALUsPerStage)
			}
		}
		if st.VLIWSlots > opts.VLIWSlotsPerStage {
			rep.Fits = false
			if rep.Reason == "" {
				rep.Reason = fmt.Sprintf("stage %d exceeds VLIW slots (%d > %d)", i, st.VLIWSlots, opts.VLIWSlotsPerStage)
			}
		}
	}
	pct := func(used, perStage int) float64 {
		cap := perStage * opts.Stages
		if cap == 0 {
			return 0
		}
		return 100 * float64(used) / float64(cap)
	}
	rep.SRAMPct = pct(rep.SRAMBlocks, opts.SRAMBlocksPerStage)
	rep.TCAMPct = pct(rep.TCAMBlocks, opts.TCAMBlocksPerStage)
	rep.SALUPct = pct(rep.SALUs, opts.SALUsPerStage)
	rep.VLIWPct = pct(rep.VLIWSlots, opts.VLIWSlotsPerStage)
	for _, st := range f.stages {
		rep.WorstSRAMPct = maxF(rep.WorstSRAMPct, 100*float64(st.SRAMBlocks)/float64(opts.SRAMBlocksPerStage))
		rep.WorstTCAMPct = maxF(rep.WorstTCAMPct, 100*float64(st.TCAMBlocks)/float64(opts.TCAMBlocksPerStage))
		rep.WorstSALUPct = maxF(rep.WorstSALUPct, 100*float64(st.SALUs)/float64(opts.SALUsPerStage))
		rep.WorstVLIWPct = maxF(rep.WorstVLIWPct, 100*float64(st.VLIWSlots)/float64(opts.VLIWSlotsPerStage))
	}

	rep.PHVBitsUsed = PHVBits(prog)
	rep.PHVPct = 100 * float64(rep.PHVBitsUsed) / float64(opts.PHVBits)
	if rep.PHVBitsUsed > opts.PHVBits {
		rep.Fits = false
		if rep.Reason == "" {
			rep.Reason = fmt.Sprintf("PHV demand %d bits exceeds %d", rep.PHVBitsUsed, opts.PHVBits)
		}
	}

	rep.LatencyCycles = opts.FixedCycles + rep.StagesUsed*opts.CyclesPerStage
	rep.LatencyNs = float64(rep.LatencyCycles) / opts.ClockGHz
	return rep
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// fitter walks the apply body allocating operations to stages.
type fitter struct {
	prog *p4.Program
	opts Options
	rep  *Report

	// lastWrite maps field path -> stage of last writer.
	lastWrite map[string]int
	// regStage pins each register to its single stage (Tofino memory
	// is stage-local).
	regStage map[string]int
	// tblStage pins each table (a table is applied once but may be
	// reached from several paths).
	tblStage map[string]int
	// regFloor/tblFloor carry stage floors across placement passes.
	regFloor  map[string]int
	tblFloor  map[string]int
	conflict  bool
	finalPass bool

	maxStageSeen int

	stages  []StageUsage
	failure string
}

// stmts2Result returns the maximum stage used by the accepted pass.
func (f *fitter) stmts2Result() int { return f.maxStageSeen }

func (f *fitter) fail(format string, args ...interface{}) {
	if f.failure == "" {
		f.failure = fmt.Sprintf(format, args...)
	}
}

func (f *fitter) stageAt(i int) *StageUsage {
	for len(f.stages) <= i {
		f.stages = append(f.stages, StageUsage{})
	}
	return &f.stages[i]
}

// readFloor is the earliest stage at which all given fields are
// available (one past their last writer).
func (f *fitter) readFloor(fields []string) int {
	floor := 0
	for _, fd := range fields {
		if s, ok := f.lastWrite[fd]; ok && s+1 > floor {
			floor = s + 1
		}
	}
	return floor
}

// exprFields collects field paths read by an expression.
func exprFields(e p4.Expr, out *[]string) {
	switch x := e.(type) {
	case *p4.FieldRef:
		*out = append(*out, x.String())
	case *p4.Bin:
		exprFields(x.X, out)
		exprFields(x.Y, out)
	case *p4.Un:
		exprFields(x.X, out)
	case *p4.Cast:
		exprFields(x.X, out)
	case *p4.TernaryExpr:
		exprFields(x.Cond, out)
		exprFields(x.A, out)
		exprFields(x.B, out)
	case *p4.CallExpr:
		for _, a := range x.Args {
			exprFields(a, out)
		}
	}
}

// stmts schedules a statement list with the given control floor and
// returns the maximum stage used (floor-1 if empty).
func (f *fitter) stmts(c *p4.Control, body []p4.Stmt, floor int) int {
	maxStage := floor - 1
	cur := floor
	for _, st := range body {
		s := f.stmt(c, st, cur)
		if s > maxStage {
			maxStage = s
		}
	}
	if maxStage > f.maxStageSeen {
		f.maxStageSeen = maxStage
	}
	return maxStage
}

func (f *fitter) stmt(c *p4.Control, st p4.Stmt, floor int) int {
	switch x := st.(type) {
	case *p4.Comment, *p4.SetValid, *p4.Exit:
		return floor - 1
	case *p4.Assign:
		return f.assign(c, x, floor)
	case *p4.If:
		var condReads []string
		exprFields(x.Cond, &condReads)
		// The condition itself occupies a VLIW decision in its stage.
		condStage := maxInt(floor, f.readFloor(condReads))
		inner := condStage
		// Branches share the incoming state; writes merge as max.
		saved := copyMap(f.lastWrite)
		thenMax := f.stmts(c, x.Then, inner)
		thenWrites := f.lastWrite
		f.lastWrite = copyMap(saved)
		elseMax := f.stmts(c, x.Else, inner)
		for k, v := range thenWrites {
			if v > f.lastWrite[k] {
				f.lastWrite[k] = v
			}
		}
		m := maxInt(thenMax, elseMax)
		return maxInt(m, condStage-1)
	case *p4.ApplyTable:
		return f.applyTable(c, x, floor)
	case *p4.CallStmt:
		return f.callStmt(c, x, floor)
	}
	return floor - 1
}

func copyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// assign places one assignment: a plain VLIW op, a SALU transaction
// (RegisterAction.execute), or a hash computation.
func (f *fitter) assign(c *p4.Control, a *p4.Assign, floor int) int {
	var reads []string
	exprFields(a.RHS, &reads)
	stage := maxInt(floor, f.readFloor(reads))

	if call, ok := a.RHS.(*p4.CallExpr); ok && call.Method == "execute" {
		if ra := c.RegActByName(call.Recv); ra != nil {
			stage = f.placeRegister(c, ra, stage)
		}
	}
	if call, ok := a.RHS.(*p4.CallExpr); ok && call.Method == "apply_hit" {
		stage = f.placeTable(c, call.Recv, stage)
	}
	stage = f.vliwStage(stage)
	st := f.stageAt(stage)
	st.VLIWSlots++
	st.Ops = append(st.Ops, a.LHS.String())
	f.lastWrite[a.LHS.String()] = stage
	return stage
}

// vliwStage finds the first stage at or after want with a free VLIW
// slot (bf-p4c spreads action logic across stages the same way).
func (f *fitter) vliwStage(want int) int {
	for s := want; s < want+2*f.opts.Stages; s++ {
		if f.stageAt(s).VLIWSlots < f.opts.VLIWSlotsPerStage {
			return s
		}
	}
	f.fail("no stage with free VLIW slots from stage %d", want)
	return want
}

// placeRegister pins a register's SALU transactions to one stage: the
// first stage at or after the dependence floor with a free SALU and
// enough SRAM. Once pinned, later accesses that would need a deeper
// stage are a fitting failure (Tofino stateful memory is stage-local).
func (f *fitter) placeRegister(c *p4.Control, ra *p4.RegisterAction, want int) int {
	reg := c.RegisterByName(ra.Register)
	if fl, ok := f.regFloor[ra.Register]; ok && fl > want {
		want = fl
	}
	if prev, ok := f.regStage[ra.Register]; ok {
		if want > prev {
			if f.finalPass {
				f.fail("register %s is pinned to stage %d but an access requires stage %d; Tofino stateful memory is stage-local", ra.Register, prev, want)
				return want
			}
			f.conflict = true
			if want > f.regFloor[ra.Register] {
				f.regFloor[ra.Register] = want
			}
			return prev
		}
		return prev
	}
	blocks := sramBlocks(reg.Size, reg.Bits)
	stage := want
	for ; stage < want+2*f.opts.Stages; stage++ {
		st := f.stageAt(stage)
		if st.SALUs < f.opts.SALUsPerStage &&
			st.SRAMBlocks+blocks <= f.opts.SRAMBlocksPerStage {
			break
		}
	}
	f.regStage[ra.Register] = stage
	st := f.stageAt(stage)
	st.SALUs++
	st.Registers = append(st.Registers, ra.Register)
	st.SRAMBlocks += blocks
	return stage
}

// placeTable pins a table to a stage and accounts its memories.
func (f *fitter) placeTable(c *p4.Control, name string, want int) int {
	t := c.TableByName(name)
	if t == nil {
		return want
	}
	// Keys read fields; action bodies read their right-hand sides
	// (assignment destinations are writes, not dependencies).
	var reads []string
	for _, k := range t.Keys {
		exprFields(k.Expr, &reads)
	}
	for _, an := range t.Actions {
		if a := c.ActionByName(an); a != nil {
			p4.Walk(a.Body, func(s p4.Stmt) {
				switch st := s.(type) {
				case *p4.Assign:
					exprFields(st.RHS, &reads)
				case *p4.If:
					exprFields(st.Cond, &reads)
				case *p4.CallStmt:
					for _, arg := range st.Args {
						exprFields(arg, &reads)
					}
				}
			})
		}
	}
	want = maxInt(want, f.readFloor(reads))
	if fl, ok := f.tblFloor[name]; ok && fl > want {
		want = fl
	}
	if prev, ok := f.tblStage[name]; ok {
		if want > prev {
			if f.finalPass {
				f.fail("table %s applied at incompatible stages (%d vs %d)", name, prev, want)
			} else {
				f.conflict = true
				if want > f.tblFloor[name] {
					f.tblFloor[name] = want
				}
			}
		}
		return prev
	}

	keyBits := 0
	ternary := false
	for _, k := range t.Keys {
		keyBits += keyWidth(f.prog, c, k.Expr)
		if k.Match == p4.MatchTernary || k.Match == p4.MatchRange || k.Match == p4.MatchLPM {
			ternary = true
		}
	}
	entries := t.Size
	if entries == 0 {
		entries = len(t.Entries)
	}
	if entries == 0 {
		entries = 1
	}
	actionDataBits := 0
	for _, an := range t.Actions {
		if a := c.ActionByName(an); a != nil {
			for _, p := range a.Params {
				actionDataBits += p.Bits
			}
		}
	}
	needTCAM := 0
	needSRAM := 0
	if ternary {
		needTCAM = tcamBlocks(entries, keyBits)
		if actionDataBits > 0 {
			needSRAM = sramBlocks(entries, actionDataBits)
		}
	} else {
		needSRAM = sramBlocks(entries, keyBits+actionDataBits+8)
	}
	needVLIW := maxInt(1, len(t.Actions))

	// First stage at or after the floor with room for the table.
	stage := want
	for ; stage < want+2*f.opts.Stages; stage++ {
		st := f.stageAt(stage)
		if st.SRAMBlocks+needSRAM <= f.opts.SRAMBlocksPerStage &&
			st.TCAMBlocks+needTCAM <= f.opts.TCAMBlocksPerStage &&
			st.VLIWSlots+needVLIW <= f.opts.VLIWSlotsPerStage {
			break
		}
	}
	f.tblStage[name] = stage
	st := f.stageAt(stage)
	st.Tables = append(st.Tables, name)
	st.TCAMBlocks += needTCAM
	st.SRAMBlocks += needSRAM
	st.VLIWSlots += needVLIW

	// Mark action writes.
	for _, an := range t.Actions {
		if a := c.ActionByName(an); a != nil {
			p4.Walk(a.Body, func(s p4.Stmt) {
				if as, ok := s.(*p4.Assign); ok {
					f.lastWrite[as.LHS.String()] = stage
				}
			})
		}
	}
	return stage
}

func (f *fitter) applyTable(c *p4.Control, x *p4.ApplyTable, floor int) int {
	stage := f.placeTable(c, x.Table, floor)
	if x.HitVar != "" {
		f.lastWrite[x.HitVar] = stage
	}
	return stage
}

func (f *fitter) callStmt(c *p4.Control, x *p4.CallStmt, floor int) int {
	// v1model register primitives: treat like SALU transactions.
	if reg := c.RegisterByName(x.Recv); reg != nil {
		var reads []string
		for _, a := range x.Args {
			exprFields(a, &reads)
		}
		stage := maxInt(floor, f.readFloor(reads))
		if fl, ok := f.regFloor[x.Recv]; ok && fl > stage {
			stage = fl
		}
		if prev, ok := f.regStage[x.Recv]; ok {
			if stage > prev {
				if f.finalPass {
					f.fail("register %s needs two stages (%d and %d)", x.Recv, prev, stage)
				} else {
					f.conflict = true
					if stage > f.regFloor[x.Recv] {
						f.regFloor[x.Recv] = stage
					}
				}
			}
			stage = prev
		} else {
			blocks := sramBlocks(reg.Size, reg.Bits)
			for ; stage < floor+2*f.opts.Stages; stage++ {
				st := f.stageAt(stage)
				if st.SALUs < f.opts.SALUsPerStage &&
					st.SRAMBlocks+blocks <= f.opts.SRAMBlocksPerStage {
					break
				}
			}
			f.regStage[x.Recv] = stage
			st := f.stageAt(stage)
			st.SALUs++
			st.Registers = append(st.Registers, x.Recv)
			st.SRAMBlocks += blocks
		}
		if x.Method == "read" {
			if dst, ok := x.Args[0].(*p4.FieldRef); ok {
				f.lastWrite[dst.String()] = stage
			}
		}
		f.stageAt(stage).VLIWSlots++
		return stage
	}
	if ra := c.RegActByName(x.Recv); ra != nil && x.Method == "execute" {
		var reads []string
		for _, a := range x.Args {
			exprFields(a, &reads)
		}
		stage := f.placeRegister(c, ra, maxInt(floor, f.readFloor(reads)))
		f.stageAt(stage).VLIWSlots++
		return stage
	}
	// Plain action call: expand its body at this point.
	if a := c.ActionByName(x.Method); a != nil && x.Recv == "" {
		return f.stmts(c, a.Body, floor)
	}
	return floor - 1
}

// keyWidth estimates the bit width of a key expression.
func keyWidth(prog *p4.Program, c *p4.Control, e p4.Expr) int {
	if fr, ok := e.(*p4.FieldRef); ok {
		name := fr.String()
		if strings.HasPrefix(name, "hdr.") {
			rest := strings.TrimPrefix(name, "hdr.")
			if i := strings.IndexByte(rest, '.'); i > 0 {
				if h := prog.HeaderByName(rest[:i]); h != nil {
					if fd := h.FieldByName(rest[i+1:]); fd != nil {
						return fd.Bits
					}
				}
			}
		}
		if strings.HasPrefix(name, "meta.") {
			for _, m := range prog.Metadata {
				if "meta."+m.Name == name {
					return m.Bits
				}
			}
		}
		for _, l := range c.Locals {
			if l.Name == name {
				return l.Bits
			}
		}
	}
	return 32
}

// sramBlocks sizes a memory in 128b x 1024 SRAM blocks. Narrow entries
// pack multiple per row (e.g. four 32-bit register cells per 128-bit
// word), as on real Tofino unit RAMs.
func sramBlocks(entries, bits int) int {
	if entries <= 0 || bits <= 0 {
		return 1
	}
	if bits >= 128 {
		words := (bits + 127) / 128
		rows := (entries + 1023) / 1024
		return maxInt(1, words*rows)
	}
	perRow := 128 / bits
	return maxInt(1, (entries+1024*perRow-1)/(1024*perRow))
}

// tcamBlocks sizes a ternary memory in 44b x 512 TCAM blocks.
func tcamBlocks(entries, keyBits int) int {
	if entries <= 0 {
		return 1
	}
	words := (keyBits + 43) / 44
	rows := (entries + 511) / 512
	return maxInt(1, words*rows)
}
