package netcl

import (
	"fmt"
	"strings"

	"netcl/internal/apps"
	"netcl/internal/passes"
)

// Interpreter benchmark: the slot-indexed compiled bmv2 engine against
// the reference tree-walker, per evaluation app, emitted as
// BENCH_interp.json by `nclbench -interp`.

// InterpPoint is one app's old-vs-new comparison.
type InterpPoint = apps.InterpPoint

// InterpReport is the interpreter hot-path benchmark.
type InterpReport struct {
	PacketsPerApp int            `json:"packets_per_app"`
	Points        []*InterpPoint `json:"points"`
	// SimAgg reports the netsim event-engine counters of one AGG
	// end-to-end run on the compiled engine (events, peak queue
	// depth, events/sec).
	SimAgg apps.SimStats `json:"sim_agg"`
}

// BenchInterp measures every benchmarked app with pkts packets per
// engine (0 = default), plus one end-to-end AGG run for the simulator
// counters.
func BenchInterp(pkts int) (*InterpReport, error) {
	if pkts <= 0 {
		pkts = 20000
	}
	points, err := apps.BenchInterpApps(pkts)
	if err != nil {
		return nil, err
	}
	agg, err := apps.RunAgg(apps.AggConfig{Workers: 4, Chunks: 48, Window: 4, Target: passes.TargetTNA})
	if err != nil {
		return nil, err
	}
	return &InterpReport{PacketsPerApp: pkts, Points: points, SimAgg: agg.Sim}, nil
}

// FormatInterp renders the benchmark as text: the engine comparison,
// then the compiled engine's own deltas (decision-diagram matchers and
// burst execution, each isolated).
func FormatInterp(rep *InterpReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "INTERPRETER — compiled engine vs reference tree-walker (%d packets per app)\n", rep.PacketsPerApp)
	fmt.Fprintf(&b, "%-8s %14s %14s %8s %12s %12s %10s %10s\n",
		"APP", "REF(pkt/s)", "COMPILED", "SPEEDUP", "REF(B/pkt)", "NEW(B/pkt)", "REF(allocs)", "NEW(allocs)")
	for _, p := range rep.Points {
		fmt.Fprintf(&b, "%-8s %14.0f %14.0f %7.2fx %12.0f %12.0f %10.1f %10.1f\n",
			p.App, p.ReferencePPS, p.CompiledPPS, p.Speedup,
			p.ReferenceBytesPkt, p.CompiledBytesPkt, p.ReferenceAllocsPkt, p.CompiledAllocsPkt)
	}
	fmt.Fprintf(&b, "COMPILED ENGINE DELTAS — match diagrams (FDD) and burst execution\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %8s %14s %14s %8s %10s\n",
		"APP", "SCAN(pkt/s)", "FDD(pkt/s)", "FDD-X", "BURST8", "BURST32", "B32-X", "B32 allocs")
	for _, p := range rep.Points {
		fmt.Fprintf(&b, "%-8s %14.0f %14.0f %7.2fx %14.0f %14.0f %7.2fx %10.1f\n",
			p.App, p.CompiledScanPPS, p.CompiledPPS, p.FDDSpeedup,
			p.Burst8PPS, p.Burst32PPS, p.Burst32Speedup, p.Burst32Allocs)
	}
	fmt.Fprintf(&b, "NETSIM — AGG end-to-end run: %d events, peak queue %d, %.0f events/sec\n",
		rep.SimAgg.Events, rep.SimAgg.PeakQueue, rep.SimAgg.EventsPerSec)
	return b.String()
}
