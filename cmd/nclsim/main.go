// Command nclsim runs one of the evaluation applications end to end on
// the simulated network and prints the workload's outcome.
//
// Usage:
//
//	nclsim -app agg  -workers 6 -chunks 64
//	nclsim -app cache -cached 16 -total 32 -requests 128
//	nclsim -app paxos -commands 32
package main

import (
	"flag"
	"fmt"
	"os"

	"netcl"
)

func main() {
	var (
		app      = flag.String("app", "agg", "application: agg, cache, or paxos")
		baseline = flag.Bool("baseline", false, "run the handwritten P4 baseline instead of generated code")
		workers  = flag.Int("workers", 4, "agg: number of workers")
		chunks   = flag.Int("chunks", 64, "agg: chunks per worker")
		cached   = flag.Int("cached", 16, "cache: keys installed in the switch")
		total    = flag.Int("total", 32, "cache: key universe size")
		requests = flag.Int("requests", 128, "cache: number of GET requests")
		commands = flag.Int("commands", 32, "paxos: client commands")
	)
	flag.Parse()

	switch *app {
	case "agg":
		res, err := netcl.RunAgg(netcl.AggConfig{
			Workers: *workers, Chunks: *chunks, Window: 4,
			Target: netcl.TargetTNA, Baseline: *baseline,
		})
		check(err)
		fmt.Printf("AGG: %d slots completed, %.0f ATE/s per worker, %d mismatches, %.1fµs simulated\n",
			res.Completed, res.ATEPerWorker, res.Mismatches, res.DurationNs/1e3)
	case "cache":
		res, err := netcl.RunCache(netcl.CacheConfig{
			CachedKeys: *cached, TotalKeys: *total, Requests: *requests,
			Target: netcl.TargetTNA, Baseline: *baseline,
		})
		check(err)
		fmt.Printf("CACHE: hit rate %.0f%%, mean response %.2fµs (%d hits, %d misses, %d wrong values)\n",
			100*res.HitRate, res.MeanResponseNs/1e3, res.Hits, res.Misses, res.WrongValues)
	case "paxos":
		res, err := netcl.RunPaxos(netcl.PaxosConfig{
			Commands: *commands, Target: netcl.TargetTNA,
		})
		check(err)
		fmt.Printf("PAXOS: %d/%d commands chosen and delivered (%d wrong values)\n",
			res.Delivered, res.Submitted, res.WrongValue)
	default:
		fmt.Fprintf(os.Stderr, "nclsim: unknown app %q\n", *app)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nclsim:", err)
		os.Exit(1)
	}
}
