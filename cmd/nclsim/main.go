// Command nclsim runs one of the evaluation applications end to end on
// the simulated network (or, for agg and paxos, over real loopback UDP
// with -backend udp) and prints the workload's outcome, including the
// reliability counters when faults are injected.
//
// Usage:
//
//	nclsim -app agg  -workers 6 -chunks 64
//	nclsim -app agg  -loss 0.01 -jitter 500 -seed 7
//	nclsim -app agg  -backend udp -loss 0.01
//	nclsim -app cache -cached 16 -total 32 -requests 128
//	nclsim -app paxos -commands 32 -loss 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"netcl"
)

func main() {
	var (
		app      = flag.String("app", "agg", "application: agg, cache, or paxos")
		backend  = flag.String("backend", "sim", "backend: sim (discrete-event) or udp (real loopback sockets; agg and paxos only)")
		baseline = flag.Bool("baseline", false, "run the handwritten P4 baseline instead of generated code")
		workers  = flag.Int("workers", 4, "agg: number of workers")
		chunks   = flag.Int("chunks", 64, "agg: chunks per worker")
		cached   = flag.Int("cached", 16, "cache: keys installed in the switch")
		total    = flag.Int("total", 32, "cache: key universe size")
		requests = flag.Int("requests", 128, "cache: number of GET requests")
		commands = flag.Int("commands", 32, "paxos: client commands")
		loss     = flag.Float64("loss", 0, "fault injection: per-traversal loss probability")
		dup      = flag.Float64("dup", 0, "fault injection: per-traversal duplication probability")
		jitter   = flag.Float64("jitter", 0, "fault injection: uniform latency jitter bound in ns (sim backend only)")
		seed     = flag.Int64("seed", 1, "fault injection: RNG seed (runs are reproducible per seed)")
	)
	flag.Parse()

	simFaults := netcl.FaultConfig{LossRate: *loss, DupRate: *dup, JitterNs: netcl.SimTime(*jitter), Seed: *seed}
	udpFaults := netcl.FaultSpec{LossRate: *loss, DupRate: *dup, Seed: *seed}

	var cfg any
	switch {
	case *app == "agg" && *backend == "sim":
		cfg = netcl.AggConfig{Workers: *workers, Chunks: *chunks, Window: 4,
			Target: netcl.TargetTNA, Baseline: *baseline, Faults: simFaults}
	case *app == "agg" && *backend == "udp":
		cfg = netcl.AggUDPConfig{Workers: *workers, Chunks: *chunks, Window: 4,
			Target: netcl.TargetTNA, Baseline: *baseline, Faults: udpFaults}
	case *app == "cache" && *backend == "sim":
		cfg = netcl.CacheConfig{CachedKeys: *cached, TotalKeys: *total, Requests: *requests,
			Target: netcl.TargetTNA, Baseline: *baseline, Faults: simFaults}
	case *app == "paxos" && *backend == "sim":
		cfg = netcl.PaxosConfig{Commands: *commands, Target: netcl.TargetTNA, Faults: simFaults}
	case *app == "paxos" && *backend == "udp":
		cfg = netcl.PaxosUDPConfig{Commands: *commands, Target: netcl.TargetTNA, Faults: udpFaults}
	default:
		fmt.Fprintf(os.Stderr, "nclsim: unsupported app/backend combination %q/%q\n", *app, *backend)
		os.Exit(2)
	}

	res, err := netcl.Run(nil, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nclsim:", err)
		os.Exit(1)
	}
	fmt.Println(res.Summary())
}
