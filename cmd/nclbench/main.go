// Command nclbench regenerates every table and figure of the paper's
// evaluation (§VII) and prints them in one report; EXPERIMENTS.md is a
// recorded run of this tool.
package main

import (
	"fmt"
	"os"

	"netcl"
)

func main() {
	report, err := netcl.FormatAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nclbench:", err)
		os.Exit(1)
	}
	fmt.Print(report)
}
