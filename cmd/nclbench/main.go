// Command nclbench regenerates every table and figure of the paper's
// evaluation (§VII) and prints them in one report; EXPERIMENTS.md is a
// recorded run of this tool.
//
// With -reliability it instead runs the goodput-under-loss sweep (the
// AGG workload at several seeded loss rates) and writes the result as
// JSON:
//
//	nclbench -reliability -out BENCH_reliability.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"netcl"
)

func main() {
	var (
		reliability = flag.Bool("reliability", false, "run the goodput-under-loss sweep instead of the paper report")
		out         = flag.String("out", "BENCH_reliability.json", "reliability: output JSON path")
		workers     = flag.Int("workers", 4, "reliability: AGG workers")
		chunks      = flag.Int("chunks", 48, "reliability: chunks per worker")
		seed        = flag.Int64("seed", 1, "reliability: fault-injection seed")
	)
	flag.Parse()

	if *reliability {
		rep, err := netcl.BenchReliability(nil, *workers, *chunks, *seed)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatReliability(rep))
		fmt.Println("wrote", *out)
		return
	}

	report, err := netcl.FormatAll()
	check(err)
	fmt.Print(report)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nclbench:", err)
		os.Exit(1)
	}
}
