// Command nclbench regenerates every table and figure of the paper's
// evaluation (§VII) and prints them in one report; EXPERIMENTS.md is a
// recorded run of this tool.
//
// With -reliability it instead runs the goodput-under-loss sweep (the
// AGG workload at several seeded loss rates) and writes the result as
// JSON:
//
//	nclbench -reliability -out BENCH_reliability.json
//
// With -interp it benchmarks the bmv2 interpreter hot path — the
// compiled slot-indexed engine against the reference tree-walker on
// each evaluation app — plus the netsim event-engine counters:
//
//	nclbench -interp -out BENCH_interp.json
//
// With -loadgen it sweeps the flow-sharded data plane over shard
// counts {1,2,4,8} under the many-pool AGG workload, verifying
// per-flow results against a single-shard replay at every point:
//
//	nclbench -loadgen -out BENCH_loadgen.json
//
// With -hostpath it sweeps the pipelined host channel over window
// sizes {1,4,16,64} on the simulated network (deterministic simulated
// time) and probes send-path allocations:
//
//	nclbench -hostpath -out BENCH_hostpath.json
//
// With -ctrl it benchmarks the transactional control plane — batched
// write throughput against single-op CRUD on a 100k-entry table
// (in-process and over TCP), and data-path p99 while the control plane
// storms:
//
//	nclbench -ctrl -out BENCH_ctrl.json
//
// With -netsim it sweeps the partitioned network simulator over host
// counts {10k, 100k, 1M} × partition counts {1, 2, 4} under the
// chained-AGG scale scenario (-smoke restricts to the quick 10k-host
// CI variant):
//
//	nclbench -netsim -out BENCH_netsim.json
//
// With -fabric it sweeps hierarchical in-network aggregation over
// multi-tier fabrics — tiers {1,2,3} × worker counts — reporting
// aggregate goodput and top-tier ingress bytes, and pinning the
// partitioned runs (k ∈ {2,4}) to the serial delivery hash chain
// (-smoke restricts the sweep for CI):
//
//	nclbench -fabric -out BENCH_fabric.json
//
// With -churn it runs the four production-churn timelines — aggregator
// crash with pool-state failover, coordinator re-election, hot-key
// churn, rolling reconfig — under live load, scored against SLOs and
// pinned to the serial hash chain under partitioned execution
// (-smoke shrinks every scenario for CI):
//
//	nclbench -churn -out BENCH_churn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"netcl"
)

func main() {
	var (
		reliability = flag.Bool("reliability", false, "run the goodput-under-loss sweep instead of the paper report")
		interp      = flag.Bool("interp", false, "benchmark the interpreter hot path instead of the paper report")
		loadgen     = flag.Bool("loadgen", false, "sweep the flow-sharded data plane over shard counts")
		hostpath    = flag.Bool("hostpath", false, "sweep the pipelined host channel over window sizes")
		ctrl        = flag.Bool("ctrl", false, "benchmark the transactional control plane")
		netsim      = flag.Bool("netsim", false, "sweep the partitioned network simulator over host counts")
		fabric      = flag.Bool("fabric", false, "sweep hierarchical aggregation over multi-tier fabrics")
		churn       = flag.Bool("churn", false, "run the production-churn timeline scenarios under SLO")
		smoke       = flag.Bool("smoke", false, "netsim/fabric/churn: quick CI variant")
		out         = flag.String("out", "", "output JSON path (default BENCH_<mode>.json)")
		workers     = flag.Int("workers", 4, "reliability: AGG workers")
		chunks      = flag.Int("chunks", 48, "reliability: chunks per worker")
		seed        = flag.Int64("seed", 1, "reliability: fault-injection seed")
		pkts        = flag.Int("pkts", 20000, "interp: packets per app per engine")
		flowPkts    = flag.Int("flowpkts", 256, "loadgen: packets per flow")
		ops         = flag.Int("ops", 512, "hostpath: CALC calls per window size")
		updates     = flag.Int("updates", 4000, "ctrl: CRUD ops per (transport, mode) point")
	)
	flag.Parse()

	if *churn {
		if *out == "" {
			*out = "BENCH_churn.json"
		}
		rep, err := netcl.BenchChurn(*smoke)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatChurn(rep))
		fmt.Println("wrote", *out)
		return
	}

	if *fabric {
		if *out == "" {
			*out = "BENCH_fabric.json"
		}
		rep, err := netcl.BenchFabric(*smoke)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatFabric(rep))
		fmt.Println("wrote", *out)
		return
	}

	if *netsim {
		if *out == "" {
			*out = "BENCH_netsim.json"
		}
		rep, err := netcl.BenchNetsim(*smoke)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatNetsim(rep))
		fmt.Println("wrote", *out)
		return
	}

	if *ctrl {
		if *out == "" {
			*out = "BENCH_ctrl.json"
		}
		rep, err := netcl.BenchCtrl(*updates)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatCtrl(rep))
		fmt.Println("wrote", *out)
		return
	}

	if *hostpath {
		if *out == "" {
			*out = "BENCH_hostpath.json"
		}
		rep, err := netcl.BenchHostpath(*ops)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatHostpath(rep))
		fmt.Println("wrote", *out)
		return
	}

	if *loadgen {
		if *out == "" {
			*out = "BENCH_loadgen.json"
		}
		rep, err := netcl.BenchLoadgen(*flowPkts)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatLoadgen(rep))
		fmt.Println("wrote", *out)
		return
	}

	if *interp {
		if *out == "" {
			*out = "BENCH_interp.json"
		}
		rep, err := netcl.BenchInterp(*pkts)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatInterp(rep))
		fmt.Println("wrote", *out)
		return
	}

	if *reliability {
		if *out == "" {
			*out = "BENCH_reliability.json"
		}
		rep, err := netcl.BenchReliability(nil, *workers, *chunks, *seed)
		check(err)
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Print(netcl.FormatReliability(rep))
		fmt.Println("wrote", *out)
		return
	}

	report, err := netcl.FormatAll()
	check(err)
	fmt.Print(report)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nclbench:", err)
		os.Exit(1)
	}
}
