// Command ncc is the NetCL compiler driver: it compiles NetCL-C device
// code to P4 for the TNA or v1model target, reports the Tofino fitting
// result, and writes one P4 program per device location — the paper's
// step 1+2 workflow (Fig. 3).
//
// Usage:
//
//	ncc [flags] kernel.ncl
//
// Flags mirror the compiler options of §VI-B (speculation and lookup
// duplication can be toggled; the dynamic-compare rewrite can be
// enabled).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"netcl"
	"netcl/internal/p4c"
)

func main() {
	var (
		target   = flag.String("target", "tna", "code generation target: tna or v1model")
		outDir   = flag.String("o", ".", "output directory for generated .p4 files")
		devices  = flag.String("devices", "", "comma-separated device ids to compile for (default: the program's locations)")
		defines  = flag.String("D", "", "comma-separated NAME=VALUE preprocessor definitions")
		noSpec   = flag.Bool("fno-speculate", false, "disable aggressive speculation")
		noDup    = flag.Bool("fno-dup-lookup", false, "disable lookup-memory duplication")
		cmpMSB   = flag.Bool("fcmp-to-sub", false, "rewrite dynamic ordered compares into sub+MSB checks")
		fit      = flag.Bool("fit", true, "run the Tofino fitting model and report resources")
		verbose  = flag.Bool("v", false, "print pass statistics")
		printSrc = flag.Bool("print", false, "print generated P4 to stdout instead of writing files")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ncc [flags] kernel.ncl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	opts := netcl.Options{
		Target:             netcl.Target(*target),
		DisableSpeculation: *noSpec,
		DisableLookupDup:   *noDup,
		EnableCmpRewrite:   *cmpMSB,
	}
	if *defines != "" {
		opts.Defines = map[string]uint64{}
		for _, kv := range strings.Split(*defines, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad define %q", kv))
			}
			v, err := strconv.ParseUint(parts[1], 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad define value %q: %v", kv, err))
			}
			opts.Defines[parts[0]] = v
		}
	}
	if *devices != "" {
		for _, d := range strings.Split(*devices, ",") {
			v, err := strconv.ParseUint(d, 0, 16)
			if err != nil {
				fatal(fmt.Errorf("bad device id %q: %v", d, err))
			}
			opts.Devices = append(opts.Devices, uint16(v))
		}
	}

	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	art, err := netcl.Compile(name, string(src), opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ncc: frontend %v, backend %v\n", art.FrontendTime, art.BackendTime)
	for comp, spec := range art.Specs {
		fmt.Printf("computation %d: specification %s (%d data bytes)\n", comp, spec, spec.DataBytes())
	}
	for _, dev := range art.Devices {
		if *verbose {
			fmt.Printf("device %d: %+v\n", dev.DeviceID, dev.Stats)
		}
		if *printSrc {
			fmt.Println(dev.Source)
		} else {
			out := filepath.Join(*outDir, fmt.Sprintf("%s_dev%d.p4", name, dev.DeviceID))
			if err := os.WriteFile(out, []byte(dev.Source), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("device %d: wrote %s\n", dev.DeviceID, out)
		}
		if *fit && opts.Target == netcl.TargetTNA {
			rep := p4c.Fit(dev.P4, p4c.Tofino1())
			status := "FITS"
			if !rep.Fits {
				status = "DOES NOT FIT: " + rep.Reason
			}
			fmt.Printf("device %d: %s — %d stages, SRAM %.1f%%, TCAM %.1f%%, SALUs %.1f%%, VLIW %.1f%%, PHV %.1f%%, latency %.0fns\n",
				dev.DeviceID, status, rep.StagesUsed, rep.SRAMPct, rep.TCAMPct,
				rep.SALUPct, rep.VLIWPct, rep.PHVPct, rep.LatencyNs)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ncc:", err)
	os.Exit(1)
}
