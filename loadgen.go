package netcl

import (
	"fmt"
	gort "runtime"
	"strings"

	"netcl/internal/apps"
	"netcl/internal/passes"
)

// Load-generator benchmark: the flow-sharded data plane swept over
// shard counts under an open-loop AGG workload, emitted as
// BENCH_loadgen.json by `nclbench -loadgen`.

// LoadgenPoint is one shard count's measurement.
type LoadgenPoint = apps.LoadgenResult

// LoadgenReport is the multi-core data-plane benchmark.
type LoadgenReport struct {
	// GOMAXPROCS/NumCPU record the machine the sweep ran on: shard
	// scaling is bounded by available cores, so a 1-CPU box serializes
	// all shards and the sweep degenerates to overhead measurement.
	GOMAXPROCS    int            `json:"gomaxprocs"`
	NumCPU        int            `json:"num_cpu"`
	Hosts         int            `json:"hosts"`
	Pools         int            `json:"pools"`
	PacketsPerFlow int           `json:"packets_per_flow"`
	Points        []*LoadgenPoint `json:"points"`
}

// BenchLoadgen sweeps the sharded engine with a closed-loop many-pool
// AGG workload (pkts packets per flow, 0 = default): shard counts
// {1, 2, 4, 8} at the default worker burst, then burst sizes {1, 8, 32}
// at one shard, isolating the burst-drain delta on a single core.
// Every point verifies per-flow results against a single-shard replay.
func BenchLoadgen(pkts int) (*LoadgenReport, error) {
	if pkts <= 0 {
		pkts = 256
	}
	rep := &LoadgenReport{
		GOMAXPROCS: gort.GOMAXPROCS(0), NumCPU: gort.NumCPU(),
		Hosts: 8, Pools: 256, PacketsPerFlow: pkts,
	}
	run := func(shards, burst int) error {
		res, err := apps.RunLoadgen(apps.LoadgenConfig{
			Shards: shards, QueueDepth: 256, Burst: burst,
			Hosts: rep.Hosts, Pools: rep.Pools, Packets: pkts,
			Verify: true, Target: passes.TargetTNA,
		})
		if err != nil {
			return fmt.Errorf("loadgen %d shards, burst %d: %w", shards, burst, err)
		}
		if res.Mismatches != 0 {
			return fmt.Errorf("loadgen %d shards, burst %d: %d per-flow mismatches vs single-shard replay",
				shards, burst, res.Mismatches)
		}
		rep.Points = append(rep.Points, res)
		return nil
	}
	for _, shards := range []int{1, 2, 4, 8} {
		if err := run(shards, 0); err != nil {
			return nil, err
		}
	}
	for _, burst := range []int{1, 8, 32} {
		if err := run(1, burst); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// FormatLoadgen renders the benchmark as text.
func FormatLoadgen(rep *LoadgenReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "LOADGEN — flow-sharded data plane, AGG %d pools × %d pkts, %d hosts (GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.Pools, rep.PacketsPerFlow, rep.Hosts, rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(&b, "%-7s %6s %12s %8s %10s %10s %10s %10s %9s\n",
		"SHARDS", "BURST", "PKTS/SEC", "SPEEDUP", "P50(µs)", "P90(µs)", "P99(µs)", "SHED", "VERIFIED")
	base := 0.0
	for _, p := range rep.Points {
		if base == 0 {
			base = p.PPS
		}
		speedup := 0.0
		if base > 0 {
			speedup = p.PPS / base
		}
		fmt.Fprintf(&b, "%-7d %6d %12.0f %7.2fx %10.2f %10.2f %10.2f %10d %6d/%d\n",
			p.Shards, p.Burst, p.PPS, speedup, p.P50Ns/1e3, p.P90Ns/1e3, p.P99Ns/1e3,
			p.Shed, p.VerifiedFlows-p.Mismatches, p.VerifiedFlows)
	}
	if rep.NumCPU == 1 {
		b.WriteString("note: single-CPU machine — shards time-share one core, so speedup reflects dispatch overhead, not parallel scaling\n")
	}
	return b.String()
}
