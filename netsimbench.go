package netcl

import (
	"fmt"
	gort "runtime"
	"strings"

	"netcl/internal/apps"
)

// Network-simulator scale benchmark: the slab/SoA, typed-event,
// partitioned engine swept over host counts and partition counts under
// the chained-AGG scenario, emitted as BENCH_netsim.json by
// `nclbench -netsim`.

// NetsimPoint is one (hosts, partitions) measurement.
type NetsimPoint = apps.NetsimResult

// NetsimReport is the simulator scale benchmark.
type NetsimReport struct {
	// GOMAXPROCS/NumCPU record the machine: partitioned windows run one
	// goroutine per partition, so on a 1-CPU box they serialize and the
	// partition sweep measures engine overhead, not parallel speedup.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Devices    int `json:"devices"`
	Rounds     int `json:"rounds"`
	// BaselineBytesPerHost is the seed engine's per-host heap cost
	// (struct + uplink + map entry), measured at BaselineHosts hosts —
	// the map key was uint16, so the seed tops out at 65536.
	BaselineBytesPerHost float64        `json:"baseline_bytes_per_host"`
	BaselineHosts        int            `json:"baseline_hosts"`
	Points               []*NetsimPoint `json:"points"`
}

// BenchNetsim sweeps the simulator over host counts {10k, 100k, 1M}
// and partition counts {1, 2, 4}; smoke restricts to 10k hosts and
// partitions {1, 2} (the CI variant). Every point checks that all
// expected slot multicasts completed and aggregated correctly.
func BenchNetsim(smoke bool) (*NetsimReport, error) {
	scales := []int{10_000, 100_000, 1_000_000}
	parts := []int{1, 2, 4}
	if smoke {
		scales = []int{10_000}
		parts = []int{1, 2}
	}
	rep := &NetsimReport{
		GOMAXPROCS: gort.GOMAXPROCS(0), NumCPU: gort.NumCPU(),
		Devices: 16, Rounds: 2,
	}
	rep.BaselineBytesPerHost, rep.BaselineHosts = apps.BaselineBytesPerHost(scales[len(scales)-1])
	for _, hosts := range scales {
		for _, k := range parts {
			res, err := apps.RunNetsimScale(apps.NetsimConfig{
				Hosts: hosts, Devices: rep.Devices, Partitions: k,
				Rounds: rep.Rounds, RemoteEvery: 64,
			})
			if err != nil {
				return nil, fmt.Errorf("netsim %d hosts, %d partitions: %w", hosts, k, err)
			}
			if res.Completed != res.Expected || res.Mismatches != 0 {
				return nil, fmt.Errorf("netsim %d hosts, %d partitions: %d/%d slot multicasts completed, %d mismatches",
					hosts, k, res.Completed, res.Expected, res.Mismatches)
			}
			rep.Points = append(rep.Points, res)
		}
	}
	return rep, nil
}

// FormatNetsim renders the benchmark as text.
func FormatNetsim(rep *NetsimReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "NETSIM — partitioned event engine, chained AGG × %d devices, %d rounds/pair (GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.Devices, rep.Rounds, rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(&b, "seed baseline: %.0f bytes/host at %d hosts (struct-per-host + map)\n",
		rep.BaselineBytesPerHost, rep.BaselineHosts)
	fmt.Fprintf(&b, "%-9s %5s %10s %12s %12s %9s %11s %10s\n",
		"HOSTS", "PARTS", "EVENTS", "EVENTS/SEC", "ALLOCS/EVT", "B/HOST", "COMPLETED", "WALL(ms)")
	for _, p := range rep.Points {
		fmt.Fprintf(&b, "%-9d %5d %10d %12.0f %12.4f %9.0f %11d %10.1f\n",
			p.Hosts, p.Partitions, p.Events, p.EventsPerSec, p.AllocsPerEvent,
			p.BytesPerHost, p.Completed, p.WallNs/1e6)
	}
	if rep.NumCPU == 1 {
		b.WriteString("note: single-CPU machine — partitions time-share one core, so the partition sweep measures windowing overhead, not parallel scaling\n")
	}
	return b.String()
}
