package netcl

import (
	"fmt"
	"strings"
	"time"

	"netcl/internal/apps"
	"netcl/internal/metrics"
	"netcl/internal/netsim"
	"netcl/internal/p4"
	"netcl/internal/p4c"
	"netcl/internal/passes"
)

// This file regenerates the paper's evaluation (§VII): one exported
// function per table and figure. Absolute numbers come from our
// simulated substrate, so they differ from the authors' testbed; the
// shapes (who wins, by what order of magnitude, where the differences
// lie) are the reproduction targets recorded in EXPERIMENTS.md.

// experimentRow pairs a Table III row with its sources and programs.
type experimentRow struct {
	Name     string
	NetCLSrc string // NetCL-C source (possibly a per-role slice)
	Baseline string // handwritten P4 text
	App      *apps.App
	DeviceID uint16
}

// rows returns the evaluation rows in Table III order.
func rows() ([]experimentRow, error) {
	var out []experimentRow
	agg := apps.ByName("AGG")
	aggBl, err := agg.Baseline()
	if err != nil {
		return nil, err
	}
	out = append(out, experimentRow{"AGG", agg.NetCL, aggBl, agg, 1})

	cache := apps.ByName("CACHE")
	cacheBl, err := cache.Baseline()
	if err != nil {
		return nil, err
	}
	out = append(out, experimentRow{"CACHE", cache.NetCL, cacheBl, cache, 1})

	paxos := apps.ByName("PAXOS")
	for _, role := range apps.PaxosRoleBaselines {
		bl, err := (&apps.App{BaselineFile: role.File}).Baseline()
		if err != nil {
			return nil, err
		}
		out = append(out, experimentRow{role.Row, paxosRoleSource(role.Row), bl, paxos, role.DeviceID})
	}

	calc := apps.ByName("CALC")
	calcBl, err := calc.Baseline()
	if err != nil {
		return nil, err
	}
	out = append(out, experimentRow{"CALC", calc.NetCL, calcBl, calc, 1})
	return out, nil
}

// paxosRoleSource slices the P4xos NetCL program into the per-role
// fragments Table III reports (the kernel plus its memory).
func paxosRoleSource(row string) string {
	marker := map[string]string{
		"PACC": "acceptor", "PLRN": "learner", "PLDR": "leader",
	}[row]
	at := map[string]string{
		"PACC": "_at(ACC1,ACC2,ACC3)", "PLRN": "_at(LEARNER)", "PLDR": "_at(LEADER)",
	}[row]
	var out []string
	lines := strings.Split(apps.PaxosSource, "\n")
	inKernel := false
	depth := 0
	for _, line := range lines {
		t := strings.TrimSpace(line)
		if !inKernel {
			if strings.HasPrefix(t, at) && strings.Contains(t, "_net_") {
				out = append(out, line)
				continue
			}
			if strings.HasPrefix(t, at) && strings.Contains(t, "_kernel") &&
				strings.Contains(t, " "+marker+"(") {
				inKernel = true
				depth = strings.Count(line, "{") - strings.Count(line, "}")
				out = append(out, line)
			}
			continue
		}
		out = append(out, line)
		depth += strings.Count(line, "{") - strings.Count(line, "}")
		if depth <= 0 && strings.Contains(line, "}") {
			inKernel = false
		}
	}
	return strings.Join(out, "\n")
}

// compileRow compiles the NetCL side of a row for TNA.
func compileRow(r experimentRow) (*Artifact, error) {
	return Compile(r.Name, r.App.NetCL, Options{
		Target:  TargetTNA,
		Defines: r.App.Defines,
		Devices: []uint16{r.DeviceID},
	})
}

// Table III ------------------------------------------------------------

// Table3Row is one LoC comparison row.
type Table3Row struct {
	App       string
	NetCL     int
	P4        int
	Reduction float64
}

// Table3 computes the lines-of-code comparison (paper Table III):
// NetCL requires O(10) LoC where handwritten P4 requires O(100).
func Table3() ([]Table3Row, float64, error) {
	rws, err := rows()
	if err != nil {
		return nil, 0, err
	}
	var out []Table3Row
	var reductions []float64
	for _, r := range rws {
		n := metrics.LoC(r.NetCLSrc)
		p := metrics.LoC(r.Baseline)
		red := float64(p) / float64(n)
		out = append(out, Table3Row{App: r.Name, NetCL: n, P4: p, Reduction: red})
		reductions = append(reductions, red)
	}
	return out, metrics.Geomean(reductions), nil
}

// Figure 12 --------------------------------------------------------------

// Fig12Row is the construct breakdown of one handwritten P4 program.
type Fig12Row struct {
	App string
	Pct map[metrics.Category]float64
}

// Fig12 computes the P4 code-distribution breakdown of the handwritten
// baselines (paper Fig. 12: >65% packet processing, ~30% headers and
// parsing, RegisterActions ~13%, control ~10%).
func Fig12() ([]Fig12Row, error) {
	rws, err := rows()
	if err != nil {
		return nil, err
	}
	var out []Fig12Row
	for _, r := range rws {
		prog, err := p4.Parse(r.Name, r.Baseline)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name, err)
		}
		out = append(out, Fig12Row{App: r.Name, Pct: metrics.Breakdown(prog)})
	}
	return out, nil
}

// Table IV ---------------------------------------------------------------

// Table4Row is one compilation-time row (seconds).
type Table4Row struct {
	App string
	// P4Fit is the fitting time of the handwritten program (the
	// "bf-p4c" column for P4).
	P4Fit float64
	// Ncc is the NetCL compiler's own time (paper: always <1s).
	Ncc float64
	// NetCLFit is the fitting time of the generated program.
	NetCLFit float64
}

// Table4 measures compilation times (paper Table IV: ncc introduces
// insignificant overhead; over 98% of time is P4 compilation).
func Table4() ([]Table4Row, error) {
	rws, err := rows()
	if err != nil {
		return nil, err
	}
	var out []Table4Row
	for _, r := range rws {
		row := Table4Row{App: r.Name}
		start := time.Now()
		bl, err := p4.Parse(r.Name, r.Baseline)
		if err != nil {
			return nil, err
		}
		p4c.Fit(bl, p4c.Tofino1())
		row.P4Fit = time.Since(start).Seconds()

		start = time.Now()
		art, err := compileRow(r)
		if err != nil {
			return nil, err
		}
		row.Ncc = time.Since(start).Seconds()
		start = time.Now()
		p4c.Fit(art.Device(r.DeviceID).P4, p4c.Tofino1())
		row.NetCLFit = time.Since(start).Seconds()
		out = append(out, row)
	}
	// The EMPTY program (only the base program and runtime).
	start := time.Now()
	art, err := Compile("empty", "_kernel(1) void noop(uint32_t x) {}", Options{Target: TargetTNA})
	if err != nil {
		return nil, err
	}
	ncc := time.Since(start).Seconds()
	start = time.Now()
	p4c.Fit(art.Devices[0].P4, p4c.Tofino1())
	out = append(out, Table4Row{App: "EMPTY", Ncc: ncc, NetCLFit: time.Since(start).Seconds()})
	return out, nil
}

// Table V ------------------------------------------------------------------

// Usage summarizes one program's Tofino resource consumption.
type Usage struct {
	Fits      bool
	Stages    int
	SRAMPct   float64
	TCAMPct   float64
	SALUPct   float64
	VLIWPct   float64
	WorstSRAM float64
	WorstTCAM float64
	WorstSALU float64
	WorstVLIW float64
	LatencyNs float64
	PHVPct    float64
	LocalBits int
	HdrBits   int
	MetaBits  int
}

func usageOf(prog *p4.Program) Usage {
	rep := p4c.Fit(prog, p4c.Tofino1())
	lm := p4c.Locals(prog)
	return Usage{
		Fits: rep.Fits, Stages: rep.StagesUsed,
		SRAMPct: rep.SRAMPct, TCAMPct: rep.TCAMPct,
		SALUPct: rep.SALUPct, VLIWPct: rep.VLIWPct,
		WorstSRAM: rep.WorstSRAMPct, WorstTCAM: rep.WorstTCAMPct,
		WorstSALU: rep.WorstSALUPct, WorstVLIW: rep.WorstVLIWPct,
		LatencyNs: rep.LatencyNs, PHVPct: rep.PHVPct,
		LocalBits: lm.LocalVarBits, HdrBits: lm.HeaderBits, MetaBits: lm.MetadataBits,
	}
}

// Table5Row compares resource usage of handwritten and generated P4.
type Table5Row struct {
	App    string
	P4     Usage
	NetCL  Usage
	Deltas struct{ Stages int }
}

// Table5 computes Tofino resource utilization for both program versions
// (paper Table V: everything fits 12 stages; generated usage is in line
// with handwritten).
func Table5() ([]Table5Row, error) {
	rws, err := rows()
	if err != nil {
		return nil, err
	}
	var out []Table5Row
	for _, r := range rws {
		bl, err := p4.Parse(r.Name, r.Baseline)
		if err != nil {
			return nil, err
		}
		art, err := compileRow(r)
		if err != nil {
			return nil, err
		}
		row := Table5Row{App: r.Name, P4: usageOf(bl), NetCL: usageOf(art.Device(r.DeviceID).P4)}
		row.Deltas.Stages = row.NetCL.Stages - row.P4.Stages
		out = append(out, row)
	}
	return out, nil
}

// Table VI and Figure 13 are views over the same fitting reports.

// Table6 returns the local-memory/PHV rows (paper Table VI).
func Table6() ([]Table5Row, error) { return Table5() }

// Fig13 returns the device packet-processing latency rows (paper
// Fig. 13: NetCL within ~9% of handwritten, all below 1µs).
func Fig13() ([]Table5Row, error) { return Table5() }

// Figure 14 -----------------------------------------------------------------

// Fig14AggPoint is one throughput sample.
type Fig14AggPoint struct {
	Workers      int
	NetCLATE     float64 // aggregated tensor elements /s /worker
	BaselineATE  float64
	NetCLErrors  int
	BaselineErrs int
}

// Fig14Agg sweeps worker counts (paper Fig. 14 left: per-worker
// throughput stays flat as workers are added; NetCL equals handwritten).
func Fig14Agg(workers []int, chunks int) ([]Fig14AggPoint, error) {
	if len(workers) == 0 {
		workers = []int{2, 4, 6}
	}
	if chunks <= 0 {
		chunks = 48
	}
	var out []Fig14AggPoint
	for _, w := range workers {
		gen, err := apps.RunAgg(apps.AggConfig{Workers: w, Chunks: chunks, Window: 4, Target: passes.TargetTNA})
		if err != nil {
			return nil, err
		}
		base, err := apps.RunAgg(apps.AggConfig{Workers: w, Chunks: chunks, Window: 4, Target: passes.TargetTNA, Baseline: true})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig14AggPoint{
			Workers: w, NetCLATE: gen.ATEPerWorker, BaselineATE: base.ATEPerWorker,
			NetCLErrors: gen.Mismatches, BaselineErrs: base.Mismatches,
		})
	}
	return out, nil
}

// Fig14CachePoint is one response-time sample.
type Fig14CachePoint struct {
	CachedKeys   int
	HitRate      float64
	NetCLMeanUs  float64
	BaselineUs   float64
	NetCLWrong   int
	BaselineWrng int
}

// Fig14Cache sweeps the number of cached keys (paper Fig. 14 right:
// ~27µs all-miss vs ~9.4µs all-hit mean response times, NetCL within a
// few percent of handwritten).
func Fig14Cache(cachedKeys []int, totalKeys, requests int) ([]Fig14CachePoint, error) {
	if totalKeys <= 0 {
		totalKeys = 32
	}
	if requests <= 0 {
		requests = 128
	}
	if len(cachedKeys) == 0 {
		cachedKeys = []int{0, totalKeys / 4, totalKeys / 2, 3 * totalKeys / 4, totalKeys}
	}
	var out []Fig14CachePoint
	for _, ck := range cachedKeys {
		gen, err := apps.RunCache(apps.CacheConfig{CachedKeys: ck, TotalKeys: totalKeys, Requests: requests, Target: passes.TargetTNA})
		if err != nil {
			return nil, err
		}
		base, err := apps.RunCache(apps.CacheConfig{CachedKeys: ck, TotalKeys: totalKeys, Requests: requests, Target: passes.TargetTNA, Baseline: true})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig14CachePoint{
			CachedKeys: ck, HitRate: gen.HitRate,
			NetCLMeanUs: gen.MeanResponseNs / 1e3, BaselineUs: base.MeanResponseNs / 1e3,
			NetCLWrong: gen.WrongValues, BaselineWrng: base.WrongValues,
		})
	}
	return out, nil
}

// Reliability benchmark ------------------------------------------------------

// ReliabilityPoint is one loss-rate sample of the AGG workload under
// seeded fault injection: goodput (only completed slots count) and the
// recovery counters.
type ReliabilityPoint struct {
	LossRate        float64 `json:"loss_rate"`
	GoodputATE      float64 `json:"goodput_ate_per_worker"`
	Completed       int     `json:"completed_slots"`
	Retransmissions int     `json:"retransmissions"`
	PacketsLost     uint64  `json:"packets_lost"`
	Duplicates      int     `json:"duplicates"`
	MeanChunkUs     float64 `json:"mean_chunk_us"`
}

// ReliabilityReport is the goodput-under-loss sweep emitted as
// BENCH_reliability.json by `nclbench -reliability`.
type ReliabilityReport struct {
	Workers int                `json:"workers"`
	Chunks  int                `json:"chunks"`
	Seed    int64              `json:"seed"`
	Points  []ReliabilityPoint `json:"points"`
}

// BenchReliability sweeps injected loss rates over the AGG workload on
// the simulated network. The seed makes the whole sweep reproducible.
func BenchReliability(lossRates []float64, workers, chunks int, seed int64) (*ReliabilityReport, error) {
	if len(lossRates) == 0 {
		lossRates = []float64{0, 0.001, 0.01, 0.05}
	}
	if workers <= 0 {
		workers = 4
	}
	if chunks <= 0 {
		chunks = 48
	}
	if seed == 0 {
		seed = 1
	}
	rep := &ReliabilityReport{Workers: workers, Chunks: chunks, Seed: seed}
	for _, lr := range lossRates {
		res, err := apps.RunAgg(apps.AggConfig{
			Workers: workers, Chunks: chunks, Window: 4, Target: passes.TargetTNA,
			Faults: netsim.FaultConfig{LossRate: lr, Seed: seed},
		})
		if err != nil {
			return nil, fmt.Errorf("loss %.3f: %w", lr, err)
		}
		rep.Points = append(rep.Points, ReliabilityPoint{
			LossRate:        lr,
			GoodputATE:      res.ATEPerWorker,
			Completed:       res.Completed,
			Retransmissions: res.Retransmissions,
			PacketsLost:     res.PacketsLost,
			Duplicates:      res.Duplicates,
			MeanChunkUs:     res.MeanChunkNs / 1e3,
		})
	}
	return rep, nil
}

// FormatReliability renders the sweep as text.
func FormatReliability(rep *ReliabilityReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "RELIABILITY — AGG goodput under injected loss (%d workers, %d chunks, seed %d)\n",
		rep.Workers, rep.Chunks, rep.Seed)
	fmt.Fprintf(&b, "%-9s %14s %10s %12s %8s %8s %12s\n",
		"LOSS", "GOODPUT(ATE/s)", "COMPLETED", "RETRANSMITS", "LOST", "DUPS", "CHUNK(µs)")
	for _, p := range rep.Points {
		fmt.Fprintf(&b, "%-9.3f %14.0f %10d %12d %8d %8d %12.1f\n",
			p.LossRate, p.GoodputATE, p.Completed, p.Retransmissions, p.PacketsLost, p.Duplicates, p.MeanChunkUs)
	}
	return b.String()
}

// Report formatting -----------------------------------------------------

// FormatAll renders every table and figure as text (used by the
// nclbench tool and recorded in EXPERIMENTS.md).
func FormatAll() (string, error) {
	var b strings.Builder

	t3, geo, err := Table3()
	if err != nil {
		return "", err
	}
	b.WriteString("TABLE III — lines of code\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %10s\n", "APP", "NETCL", "P4", "REDUCTION")
	for _, r := range t3 {
		fmt.Fprintf(&b, "%-8s %8d %8d %9.2fx\n", r.App, r.NetCL, r.P4, r.Reduction)
	}
	fmt.Fprintf(&b, "GEOMEAN reduction: %.2fx\n\n", geo)

	f12, err := Fig12()
	if err != nil {
		return "", err
	}
	b.WriteString("FIGURE 12 — breakdown of handwritten P4 code (%)\n")
	cats := []metrics.Category{metrics.CatHeadersParsing, metrics.CatMATs, metrics.CatRegActions, metrics.CatControl, metrics.CatOther}
	fmt.Fprintf(&b, "%-8s", "APP")
	for _, c := range cats {
		fmt.Fprintf(&b, " %20s", c)
	}
	b.WriteByte('\n')
	for _, r := range f12 {
		fmt.Fprintf(&b, "%-8s", r.App)
		for _, c := range cats {
			fmt.Fprintf(&b, " %19.1f%%", r.Pct[c])
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')

	t4, err := Table4()
	if err != nil {
		return "", err
	}
	b.WriteString("TABLE IV — compilation times (seconds)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %12s\n", "APP", "P4-fit", "ncc", "NetCL-fit")
	for _, r := range t4 {
		fmt.Fprintf(&b, "%-8s %12.4f %12.4f %12.4f\n", r.App, r.P4Fit, r.Ncc, r.NetCLFit)
	}
	b.WriteByte('\n')

	t5, err := Table5()
	if err != nil {
		return "", err
	}
	b.WriteString("TABLE V — Tofino resource utilization (handwritten | generated)\n")
	fmt.Fprintf(&b, "%-8s %10s %15s %15s %15s %15s\n", "APP", "STAGES", "SRAM", "TCAM", "SALUS", "VLIW")
	for _, r := range t5 {
		fmt.Fprintf(&b, "%-8s %4d | %2d  %5.1f%% | %4.1f%% %5.1f%% | %4.1f%% %5.1f%% | %4.1f%% %5.1f%% | %4.1f%%\n",
			r.App, r.P4.Stages, r.NetCL.Stages,
			r.P4.SRAMPct, r.NetCL.SRAMPct, r.P4.TCAMPct, r.NetCL.TCAMPct,
			r.P4.SALUPct, r.NetCL.SALUPct, r.P4.VLIWPct, r.NetCL.VLIWPct)
	}
	b.WriteByte('\n')

	// The EMPTY row of Tables V/VI: the base program and NetCL runtime
	// alone (no kernel logic).
	emptyArt, err := Compile("empty", "_kernel(1) void noop(uint32_t x) {}", Options{Target: TargetTNA})
	if err != nil {
		return "", err
	}
	empty := usageOf(emptyArt.Devices[0].P4)
	fmt.Fprintf(&b, "%-8s %4d |      %5.1f%% |        %5.1f%% |        %5.1f%% |        %5.1f%%   (base program only)\n",
		"EMPTY", empty.Stages, empty.SRAMPct, empty.TCAMPct, empty.SALUPct, empty.VLIWPct)
	b.WriteByte('\n')

	b.WriteString("TABLE VI — local memory and worst-case PHV\n")
	fmt.Fprintf(&b, "%-8s %22s %22s %18s\n", "APP", "P4 locals/hdr/meta", "NetCL locals/hdr/meta", "PHV P4 | NetCL")
	for _, r := range t5 {
		fmt.Fprintf(&b, "%-8s %8db %6db %5db %8db %6db %5db %8.1f%% | %5.1f%%\n",
			r.App, r.P4.LocalBits, r.P4.HdrBits, r.P4.MetaBits,
			r.NetCL.LocalBits, r.NetCL.HdrBits, r.NetCL.MetaBits,
			r.P4.PHVPct, r.NetCL.PHVPct)
	}
	fmt.Fprintf(&b, "%-8s %8s %6s %5s %8db %6db %5db %8s | %5.1f%%   (base program only)\n",
		"EMPTY", "-", "-", "-", empty.LocalBits, empty.HdrBits, empty.MetaBits, "-", empty.PHVPct)
	b.WriteByte('\n')

	b.WriteString("FIGURE 13 — device packet-processing latency (ns)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %8s\n", "APP", "P4", "NetCL", "DELTA")
	for _, r := range t5 {
		delta := 100 * (r.NetCL.LatencyNs - r.P4.LatencyNs) / r.P4.LatencyNs
		fmt.Fprintf(&b, "%-8s %12.0f %12.0f %+7.1f%%\n", r.App, r.P4.LatencyNs, r.NetCL.LatencyNs, delta)
	}
	b.WriteByte('\n')

	agg, err := Fig14Agg(nil, 0)
	if err != nil {
		return "", err
	}
	b.WriteString("FIGURE 14 (left) — AGG throughput (ATE/s per worker)\n")
	fmt.Fprintf(&b, "%-8s %15s %15s\n", "WORKERS", "NetCL", "handwritten")
	for _, p := range agg {
		fmt.Fprintf(&b, "%-8d %15.0f %15.0f\n", p.Workers, p.NetCLATE, p.BaselineATE)
	}
	b.WriteByte('\n')

	cache, err := Fig14Cache(nil, 0, 0)
	if err != nil {
		return "", err
	}
	b.WriteString("FIGURE 14 (right) — CACHE mean response time (µs)\n")
	fmt.Fprintf(&b, "%-10s %8s %12s %12s\n", "CACHED", "HITRATE", "NetCL", "handwritten")
	for _, p := range cache {
		fmt.Fprintf(&b, "%-10d %7.0f%% %12.2f %12.2f\n", p.CachedKeys, 100*p.HitRate, p.NetCLMeanUs, p.BaselineUs)
	}
	return b.String(), nil
}
