// Package netcl is the public API of the NetCL reproduction: a unified
// programming framework for in-network computing (SC'24). It compiles
// NetCL-C device code to P4 for Tofino-style (TNA) and v1model
// targets, provides the host runtime (messages, managed memory), and
// drives the bundled behavioral-model switch and network simulator
// used to reproduce the paper's evaluation.
//
// Typical use:
//
//	art, err := netcl.Compile("cache", src, netcl.Options{Target: netcl.TargetTNA})
//	// art.Devices[i].Source is the generated P4; art.Specs drives
//	// message packing on hosts.
package netcl

import (
	"fmt"
	"time"

	"netcl/internal/codegen"
	"netcl/internal/ir"
	"netcl/internal/lang"
	"netcl/internal/lower"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/sema"
)

// Target selects the P4 backend.
type Target = passes.Target

// Supported targets.
const (
	TargetTNA     = passes.TargetTNA
	TargetV1Model = passes.TargetV1Model
)

// Options configures compilation.
type Options struct {
	// Defines injects object-like preprocessor constants (-DNAME=V).
	Defines map[string]uint64
	// Target selects the backend (default TNA).
	Target Target
	// Devices lists the device IDs to compile for. Empty means the
	// program's explicit locations, or device 1 for location-less
	// programs.
	Devices []uint16
	// MaxUnroll bounds loop unrolling (default 4096).
	MaxUnroll int
	// DisableSpeculation turns off aggressive speculation (§VI-B flag).
	DisableSpeculation bool
	// DisableLookupDup turns off lookup-memory duplication (§VI-B flag).
	DisableLookupDup bool
	// EnableCmpRewrite turns on the dynamic-compare → sub+MSB rewrite.
	EnableCmpRewrite bool
	// CondDepthThreshold tunes the Tofino memory distance check.
	CondDepthThreshold int
}

// DeviceArtifact is the compilation result for one device location.
type DeviceArtifact struct {
	DeviceID uint16
	Module   *ir.Module
	P4       *p4.Program
	// Source is the generated P4 program text.
	Source string
	// Stats reports what the pass pipeline did.
	Stats passes.Stats
}

// Artifact is the result of compiling a NetCL program.
type Artifact struct {
	Name    string
	Program *sema.Program
	Target  Target
	Devices []*DeviceArtifact
	// Specs maps computation IDs to message layouts (consumed by the
	// host runtime's pack/unpack, like the compiler-embedded records
	// of §VI-A).
	Specs map[uint8]*runtime.MessageSpec
	// FrontendTime and BackendTime split compilation time the way
	// Table IV does (ncc vs. P4 compilation).
	FrontendTime time.Duration
	BackendTime  time.Duration
}

// Device returns the artifact for a device ID, or nil.
func (a *Artifact) Device(id uint16) *DeviceArtifact {
	for _, d := range a.Devices {
		if d.DeviceID == id {
			return d
		}
	}
	return nil
}

// Compile parses, checks, lowers, optimizes, and generates P4 for
// every device location of the program.
func Compile(name, src string, opts Options) (*Artifact, error) {
	if opts.Target == "" {
		opts.Target = TargetTNA
	}
	start := time.Now()
	var diags lang.Diagnostics
	file := lang.ParseFile(name+".ncl", src, opts.Defines, &diags)
	prog := sema.Check(file, &diags)
	if err := diags.Err(); err != nil {
		return nil, err
	}

	devices := opts.Devices
	if len(devices) == 0 {
		devices = prog.Locations()
	}
	if len(devices) == 0 {
		devices = []uint16{1}
	}

	art := &Artifact{
		Name:    name,
		Program: prog,
		Target:  opts.Target,
		Specs:   map[uint8]*runtime.MessageSpec{},
	}
	for comp, kernels := range prog.Computations {
		art.Specs[comp] = specFor(comp, kernels[0])
	}
	art.FrontendTime = time.Since(start)

	backendStart := time.Now()
	popts := passes.DefaultOptions(opts.Target)
	if opts.DisableSpeculation {
		popts.Speculate = false
	}
	if opts.DisableLookupDup {
		popts.DuplicateLookups = false
	}
	popts.CmpToSubMSB = opts.EnableCmpRewrite
	if opts.CondDepthThreshold > 0 {
		popts.CondDepthThreshold = opts.CondDepthThreshold
	}

	for _, dev := range devices {
		mod := lower.Module(prog, dev, lower.Options{MaxUnroll: opts.MaxUnroll}, &diags)
		if err := diags.Err(); err != nil {
			return nil, err
		}
		if mod == nil {
			return nil, fmt.Errorf("%s: lowering for device %d produced no module", name, dev)
		}
		stats, err := passes.Run(mod, popts)
		if err != nil {
			return nil, fmt.Errorf("%s (device %d): %w", name, dev, err)
		}
		p4prog, err := codegen.Generate(mod, codegen.Options{
			Target:   p4.Target(opts.Target),
			ProgName: fmt.Sprintf("%s_dev%d", name, dev),
		})
		if err != nil {
			return nil, fmt.Errorf("%s (device %d): %w", name, dev, err)
		}
		art.Devices = append(art.Devices, &DeviceArtifact{
			DeviceID: dev,
			Module:   mod,
			P4:       p4prog,
			Source:   p4.Print(p4prog),
			Stats:    stats,
		})
	}
	art.BackendTime = time.Since(backendStart)
	return art, nil
}

// specFor derives the runtime message layout from a kernel.
func specFor(comp uint8, k *sema.Function) *runtime.MessageSpec {
	spec := &runtime.MessageSpec{Comp: comp}
	ks := k.Spec()
	for i := range ks.Counts {
		spec.Args = append(spec.Args, runtime.ArgSpec{
			Name:  k.Params[i].Name(),
			Bytes: ks.Types[i].Bits() / 8,
			Count: ks.Counts[i],
			Out:   ks.Dirs[i] != sema.ByVal,
		})
	}
	return spec
}
