package netcl

import (
	"strings"
	"testing"

	"netcl/internal/metrics"
)

// These tests pin the *shapes* of the paper's evaluation results:
// which side wins, by roughly what factor, and where the crossovers
// fall. Absolute numbers live in EXPERIMENTS.md.

func TestTable3Shape(t *testing.T) {
	rows, geo, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		// NetCL is O(10), handwritten P4 is O(100) (paper §VII).
		if r.NetCL > 100 {
			t.Errorf("%s: NetCL LoC %d not O(10)", r.App, r.NetCL)
		}
		if r.P4 < 100 {
			t.Errorf("%s: P4 LoC %d not O(100)", r.App, r.P4)
		}
		if r.Reduction < 4 {
			t.Errorf("%s: reduction %.1fx below the paper's 5-30x band", r.App, r.Reduction)
		}
	}
	// Paper geomean: 8.14x/11.93x. Accept the same order of magnitude.
	if geo < 6 || geo > 30 {
		t.Errorf("geomean reduction %.2fx outside the plausible band", geo)
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	var packetProcessing, control float64
	for _, r := range rows {
		packetProcessing += r.Pct[metrics.CatHeadersParsing] + r.Pct[metrics.CatMATs] + r.Pct[metrics.CatRegActions]
		control += r.Pct[metrics.CatControl]
	}
	packetProcessing /= float64(len(rows))
	control /= float64(len(rows))
	// Paper: >65% packet-processing constructs on average; control
	// logic only ~10-20%.
	if packetProcessing < 55 {
		t.Errorf("packet-processing share %.1f%%, want the majority", packetProcessing)
	}
	if control > 40 {
		t.Errorf("control share %.1f%% implausibly high", control)
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: ncc always finishes in under one second.
		if r.Ncc >= 1.0 {
			t.Errorf("%s: ncc took %.2fs", r.App, r.Ncc)
		}
	}
}

func TestTable5And6Shape(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.P4.Fits || !r.NetCL.Fits {
			t.Errorf("%s: must fit a 12-stage pipe (P4 %v, NetCL %v)", r.App, r.P4.Fits, r.NetCL.Fits)
		}
		// Generated code may use a few extra stages (paper: +3 for
		// CACHE) but never fewer resources than zero or more than 12.
		if d := r.NetCL.Stages - r.P4.Stages; d < 0 || d > 3 {
			t.Errorf("%s: stage delta %d outside [0,3]", r.App, d)
		}
		// PHV: generated within a few percent of handwritten, except
		// small programs where the base program dominates (paper: CALC
		// +12%).
		if d := r.NetCL.PHVPct - r.P4.PHVPct; d < -1 || d > 13 {
			t.Errorf("%s: PHV delta %.1f%% outside the paper's band", r.App, d)
		}
		// Latency: NetCL within ~15%, all below 1µs (paper Fig. 13).
		if r.NetCL.LatencyNs >= 1000 || r.P4.LatencyNs >= 1000 {
			t.Errorf("%s: latency above 1µs", r.App)
		}
		if rel := (r.NetCL.LatencyNs - r.P4.LatencyNs) / r.P4.LatencyNs; rel < 0 || rel > 0.20 {
			t.Errorf("%s: latency delta %.1f%% outside [0,20]%%", r.App, 100*rel)
		}
	}
	// AGG is the SALU-heaviest program (paper Table V shape).
	if rows[0].App != "AGG" || rows[0].NetCL.SALUPct < rows[5].NetCL.SALUPct {
		t.Error("AGG should dominate SALU usage")
	}
}

func TestFig14AggShape(t *testing.T) {
	pts, err := Fig14Agg([]int{2, 4, 6}, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.NetCLErrors != 0 || p.BaselineErrs != 0 {
			t.Errorf("workers=%d: aggregation errors", p.Workers)
		}
		// NetCL equals handwritten (paper: "no difference").
		if r := p.NetCLATE / p.BaselineATE; r < 0.97 || r > 1.03 {
			t.Errorf("workers=%d: NetCL/baseline ratio %.3f", p.Workers, r)
		}
	}
	// Adding workers must not degrade per-worker throughput by more
	// than a few percent (paper: flat).
	if r := pts[2].NetCLATE / pts[0].NetCLATE; r < 0.90 {
		t.Errorf("per-worker throughput degraded: 6w/2w = %.3f", r)
	}
}

func TestFig14CacheShape(t *testing.T) {
	pts, err := Fig14Cache([]int{0, 16, 32}, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatal("points")
	}
	allMiss, half, allHit := pts[0], pts[1], pts[2]
	if !(allMiss.NetCLMeanUs > half.NetCLMeanUs && half.NetCLMeanUs > allHit.NetCLMeanUs) {
		t.Errorf("response time must fall with hit rate: %.1f %.1f %.1f",
			allMiss.NetCLMeanUs, half.NetCLMeanUs, allHit.NetCLMeanUs)
	}
	// Paper: ~27µs all-miss, ~9.4µs all-hit; require the same band.
	if allMiss.NetCLMeanUs < 20 || allMiss.NetCLMeanUs > 35 {
		t.Errorf("all-miss %.1fµs outside [20,35]", allMiss.NetCLMeanUs)
	}
	if allHit.NetCLMeanUs < 6 || allHit.NetCLMeanUs > 13 {
		t.Errorf("all-hit %.1fµs outside [6,13]", allHit.NetCLMeanUs)
	}
	for _, p := range pts {
		if r := p.NetCLMeanUs / p.BaselineUs; r < 0.95 || r > 1.05 {
			t.Errorf("cached=%d NetCL/baseline %.3f", p.CachedKeys, r)
		}
	}
}

func TestFormatAllRuns(t *testing.T) {
	s, err := FormatAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE III", "FIGURE 12", "TABLE IV", "TABLE V", "TABLE VI", "FIGURE 13", "FIGURE 14"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %s", want)
		}
	}
}
