module netcl

go 1.22
