package netcl

import (
	"strings"
	"testing"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/p4c"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// fig4 is the paper's Figure 4 (in-network cache) with a tiny CMS
// threshold so tests can exercise the hot-key path quickly.
const fig4 = `
#define CMS_HASHES 3
#define THRESH 3
#define GET_REQ 1

_managed_ unsigned cms[CMS_HASHES][4096];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k) & 0xFFF], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k) & 0xFFF], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k) & 0xFFF], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,43},
                                                      {3,44}, {4,45}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
`

// sendNetCL packs a message, frames it, runs it through the switch,
// and unpacks the (possibly forwarded) result.
func sendNetCL(t *testing.T, sw *bmv2.Switch, spec *runtime.MessageSpec, hdr wire.Header, args [][]uint64) (*bmv2.Result, wire.Header, [][]uint64) {
	t.Helper()
	msg, err := runtime.Pack(spec, hdr, args)
	if err != nil {
		t.Fatalf("pack: %v", err)
	}
	pkt := runtime.Frame(msg, 0x0a0a0a, 0x0b0b0b)
	res, err := sw.Process(pkt, 1)
	if err != nil {
		t.Fatalf("process: %v", err)
	}
	if res.Dropped {
		return res, wire.Header{}, nil
	}
	out, ok := runtime.Deframe(res.Data)
	if !ok {
		t.Fatalf("output is not a NetCL frame")
	}
	outArgs := make([][]uint64, len(spec.Args))
	for i, a := range spec.Args {
		outArgs[i] = make([]uint64, a.Count)
	}
	outHdr, err := runtime.Unpack(spec, out, outArgs)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	return res, outHdr, outArgs
}

func compileFig4(t *testing.T, target Target) (*Artifact, *bmv2.Switch) {
	t.Helper()
	art, err := Compile("cache", fig4, Options{Target: target})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dev := art.Device(1)
	if dev == nil {
		t.Fatal("no artifact for device 1")
	}
	if err := dev.P4.Validate(); err != nil {
		t.Fatalf("p4 validate: %v", err)
	}
	sw := bmv2.New(dev.P4)
	// Operator configuration: next hops for host 1 (client, port 1)
	// and host 2 (the KVS server, port 2).
	for hostID, port := range map[uint64]uint64{1: 1, 2: 2} {
		if err := sw.InsertEntry("netcl_fwd", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: hostID}},
			Action: &p4.ActionCall{Name: "set_port", Args: []uint64{port}},
		}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	return art, sw
}

func testCacheSemantics(t *testing.T, target Target) {
	art, sw := compileFig4(t, target)
	spec := art.Specs[1]
	if spec.String() != "[1,1,1,1,1][u8,u32,u32,u8,u32]" {
		t.Fatalf("spec: %s", spec)
	}
	mkHdr := func() wire.Header {
		return runtime.Message{Src: 1, Dst: 2, Device: 1, Comp: 1}.Header()
	}

	// GET of a cached key reflects back to the client with the value.
	res, hdr, out := sendNetCL(t, sw, spec, mkHdr(), [][]uint64{{1}, {2}, nil, nil, nil})
	if res.Dropped {
		t.Fatal("hit was dropped")
	}
	if hdr.Act != wire.ActReflect {
		t.Fatalf("hit action: %s", wire.ActionName(int(hdr.Act)))
	}
	if out[3][0] != 1 || out[2][0] != 43 {
		t.Fatalf("hit=%d v=%d, want 1/43", out[3][0], out[2][0])
	}
	if hdr.Dst != 1 || res.Port != 1 {
		t.Fatalf("reflected to dst=%d port=%d, want host 1 port 1", hdr.Dst, res.Port)
	}

	// GET of an uncached key passes through to the server.
	res, hdr, out = sendNetCL(t, sw, spec, mkHdr(), [][]uint64{{1}, {99}, nil, nil, nil})
	if hdr.Act != wire.ActPass || res.Port != 2 {
		t.Fatalf("miss: act=%s port=%d, want pass/2", wire.ActionName(int(hdr.Act)), res.Port)
	}
	if out[3][0] != 0 {
		t.Fatalf("miss reported hit=1")
	}
	if out[4][0] != 0 {
		t.Fatalf("first miss should not be hot, hot=%d", out[4][0])
	}

	// After enough misses the count-min sketch marks the key hot.
	var hot uint64
	for i := 0; i < 5; i++ {
		_, _, out = sendNetCL(t, sw, spec, mkHdr(), [][]uint64{{1}, {99}, nil, nil, nil})
		hot = out[4][0]
	}
	if hot <= 3 {
		t.Fatalf("key should be hot after 6 misses, hot=%d", hot)
	}

	// A non-GET op takes the implicit pass() and is not looked up.
	_, hdr, out = sendNetCL(t, sw, spec, mkHdr(), [][]uint64{{7}, {2}, nil, nil, nil})
	if hdr.Act != wire.ActPass || out[3][0] != 0 {
		t.Fatalf("non-GET: act=%s hit=%d", wire.ActionName(int(hdr.Act)), out[3][0])
	}
}

func TestCacheSemanticsTNA(t *testing.T)     { testCacheSemantics(t, TargetTNA) }
func TestCacheSemanticsV1Model(t *testing.T) { testCacheSemantics(t, TargetV1Model) }

func TestManagedMemoryControlPlane(t *testing.T) {
	art, sw := compileFig4(t, TargetTNA)
	_ = art
	// cms is managed and partitioned per hash row: reg_cms__0 exists.
	if sw.RegisterSize("reg_cms__0") != 4096 {
		t.Fatalf("reg_cms__0 size: %d", sw.RegisterSize("reg_cms__0"))
	}
	if err := sw.RegisterWrite("reg_cms__0", 7, 123); err != nil {
		t.Fatal(err)
	}
	v, err := sw.RegisterRead("reg_cms__0", 7)
	if err != nil || v != 123 {
		t.Fatalf("read back %d, %v", v, err)
	}
}

// fig7 with small sizes for the AllReduce end-to-end test.
const fig7 = `
#define NUM_SLOTS 8
#define SLOT_SIZE 4
#define NUM_WORKERS 3

_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce( uint8_t ver, uint16_t bmp_idx,
                           uint16_t agg_idx, uint16_t mask,
                           uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }

  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(&Agg[i][agg_idx], !seen, v[i]);

    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
`

func testAllReduce(t *testing.T, target Target) {
	art, err := Compile("agg", fig7, Options{Target: target, Devices: []uint16{1}})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dev := art.Device(1)
	sw := bmv2.New(dev.P4)
	spec := art.Specs[1]
	// Operator configuration: worker hosts 10-12 on ports 1-3, the
	// nominal destination host 100 on port 9.
	for hostID, port := range map[uint64]uint64{10: 1, 11: 2, 12: 3, 100: 9} {
		if err := sw.InsertEntry("netcl_fwd", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: hostID}},
			Action: &p4.ActionCall{Name: "set_port", Args: []uint64{port}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	send := func(worker int, ver, slot uint64, vals []uint64) (*bmv2.Result, wire.Header, [][]uint64) {
		hdr := runtime.Message{Src: uint16(10 + worker), Dst: 100, Device: 1, Comp: 1}.Header()
		aggIdx := slot + ver*8
		return sendNetCL(t, sw, spec, hdr, [][]uint64{
			{ver}, {slot}, {aggIdx}, {1 << uint(worker)}, vals,
		})
	}

	// Workers 0 and 1 contribute to slot 0, version 0: both dropped.
	res, _, _ := send(0, 0, 0, []uint64{1, 2, 3, 4})
	if !res.Dropped {
		t.Fatal("first contribution should be dropped")
	}
	res, _, _ = send(1, 0, 0, []uint64{10, 20, 30, 40})
	if !res.Dropped {
		t.Fatal("second contribution should be dropped")
	}
	// Worker 2 completes the slot: multicast with the aggregated sums.
	res, hdr, out := send(2, 0, 0, []uint64{100, 200, 300, 400})
	if res.Dropped {
		t.Fatal("final contribution should not be dropped")
	}
	if hdr.Act != wire.ActMulticast || res.Mcast != 42 {
		t.Fatalf("completion: act=%s mcast=%d", wire.ActionName(int(hdr.Act)), res.Mcast)
	}
	want := []uint64{111, 222, 333, 444}
	for i, w := range want {
		if out[4][i] != w {
			t.Errorf("aggregate[%d] = %d, want %d", i, out[4][i], w)
		}
	}

	// Retransmission from worker 2 after completion: the slot count is
	// 0 and the worker is in the bitmap, so the result is reflected
	// back with the stored aggregate.
	res, hdr, out = send(2, 0, 0, []uint64{100, 200, 300, 400})
	if res.Dropped || hdr.Act != wire.ActReflect {
		t.Fatalf("retransmission: dropped=%v act=%s", res.Dropped, wire.ActionName(int(hdr.Act)))
	}
	for i, w := range want {
		if out[4][i] != w {
			t.Errorf("retransmitted aggregate[%d] = %d, want %d", i, out[4][i], w)
		}
	}
	if hdr.Dst != 12 {
		t.Errorf("reflect should target worker host 12, got %d", hdr.Dst)
	}
}

func TestAllReduceTNA(t *testing.T)     { testAllReduce(t, TargetTNA) }
func TestAllReduceV1Model(t *testing.T) { testAllReduce(t, TargetV1Model) }

func TestGeneratedSourceShape(t *testing.T) {
	art, _ := compileFig4(t, TargetTNA)
	src := art.Device(1).Source
	for _, want := range []string{
		"RegisterAction", "Register<", "Hash<", "const entries",
		"parse_netcl", "table lu_cache", "Pipeline(", "Switch(pipe) main;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated TNA source missing %q", want)
		}
	}
	artV1, err := Compile("cache", fig4, Options{Target: TargetV1Model})
	if err != nil {
		t.Fatal(err)
	}
	srcV1 := artV1.Device(1).Source
	for _, want := range []string{"register<", "V1Switch(", ".read(", ".write("} {
		if !strings.Contains(srcV1, want) {
			t.Errorf("generated v1model source missing %q", want)
		}
	}
	if strings.Contains(srcV1, "RegisterAction") {
		t.Error("v1model source must not contain TNA RegisterActions")
	}
}

func TestCompileTimeSplit(t *testing.T) {
	art, _ := compileFig4(t, TargetTNA)
	if art.FrontendTime <= 0 || art.BackendTime <= 0 {
		t.Errorf("times not measured: %v %v", art.FrontendTime, art.BackendTime)
	}
}

func TestMultiDeviceCompile(t *testing.T) {
	src := `
_at(10) _net_ uint32_t A;
_at(20) _net_ uint32_t B;
_at(10) _kernel(1) void ka(uint32_t &x) { x = ncl::atomic_add(&A, 1); }
_at(20) _kernel(1) void kb(uint32_t &x) { x = ncl::atomic_add(&B, 2); }
`
	art, err := Compile("pair", src, Options{Target: TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Devices) != 2 {
		t.Fatalf("devices: %d", len(art.Devices))
	}
	if art.Device(10) == nil || art.Device(20) == nil {
		t.Fatal("missing device artifacts")
	}
	if !strings.Contains(art.Device(10).Source, "reg_A") ||
		strings.Contains(art.Device(10).Source, "reg_B") {
		t.Error("device 10 should only contain A")
	}
}

func TestAppsFitTofino(t *testing.T) {
	// Both paper applications must fit a 12-stage Tofino pipe, with
	// per-packet latency below 1 microsecond (paper Fig. 13 / Table V).
	for _, src := range []struct{ name, s string }{{"cache", fig4}, {"agg", fig7}} {
		art, err := Compile(src.name, src.s, Options{Target: TargetTNA, Devices: []uint16{1}})
		if err != nil {
			t.Fatalf("%s: %v", src.name, err)
		}
		rep := p4c.Fit(art.Device(1).P4, p4c.Tofino1())
		if !rep.Fits {
			t.Errorf("%s does not fit: %s", src.name, rep.Reason)
		}
		if rep.StagesUsed > 12 || rep.StagesUsed < 2 {
			t.Errorf("%s: implausible stage count %d", src.name, rep.StagesUsed)
		}
		if rep.LatencyNs >= 1000 {
			t.Errorf("%s: latency %.0fns not below 1us", src.name, rep.LatencyNs)
		}
		if rep.SALUs == 0 {
			t.Errorf("%s: no SALUs accounted", src.name)
		}
	}
}
