package netcl

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§VII) plus ablations of the compiler flags
// described in §VI-B. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports its headline numbers as custom metrics so the
// rows appear directly in the bench output; the full formatted tables
// come from `go run ./cmd/nclbench`.

import (
	"sync"
	"testing"

	"netcl/internal/apps"
	"netcl/internal/bmv2"
	"netcl/internal/metrics"
	"netcl/internal/p4c"
	"netcl/internal/passes"
)

// BenchmarkTable3LoC regenerates the lines-of-code comparison.
func BenchmarkTable3LoC(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		var err error
		_, geo, err = Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geo, "geomean-reduction-x")
}

// BenchmarkFig12Breakdown regenerates the P4 construct breakdown.
func BenchmarkFig12Breakdown(b *testing.B) {
	var pp float64
	for i := 0; i < b.N; i++ {
		rows, err := Fig12()
		if err != nil {
			b.Fatal(err)
		}
		pp = 0
		for _, r := range rows {
			pp += r.Pct[metrics.CatHeadersParsing] + r.Pct[metrics.CatMATs] + r.Pct[metrics.CatRegActions]
		}
		pp /= float64(len(rows))
	}
	b.ReportMetric(pp, "pkt-processing-%")
}

// BenchmarkTable4CompileTimes regenerates compilation-time rows.
func BenchmarkTable4CompileTimes(b *testing.B) {
	var ncc float64
	for i := 0; i < b.N; i++ {
		rows, err := Table4()
		if err != nil {
			b.Fatal(err)
		}
		ncc = 0
		for _, r := range rows {
			if r.Ncc > ncc {
				ncc = r.Ncc
			}
		}
	}
	b.ReportMetric(ncc*1000, "worst-ncc-ms")
}

// BenchmarkTable5Resources regenerates the Tofino resource table.
func BenchmarkTable5Resources(b *testing.B) {
	var aggSALU float64
	for i := 0; i < b.N; i++ {
		rows, err := Table5()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.NetCL.Fits {
				b.Fatalf("%s does not fit", r.App)
			}
			if r.App == "AGG" {
				aggSALU = r.NetCL.SALUPct
			}
		}
	}
	b.ReportMetric(aggSALU, "agg-salu-%")
}

// BenchmarkTable6PHV regenerates the PHV/local-memory table.
func BenchmarkTable6PHV(b *testing.B) {
	var worstDelta float64
	for i := 0; i < b.N; i++ {
		rows, err := Table6()
		if err != nil {
			b.Fatal(err)
		}
		worstDelta = 0
		for _, r := range rows {
			if d := r.NetCL.PHVPct - r.P4.PHVPct; d > worstDelta {
				worstDelta = d
			}
		}
	}
	b.ReportMetric(worstDelta, "worst-phv-delta-%")
}

// BenchmarkFig13Latency regenerates the device latency figure.
func BenchmarkFig13Latency(b *testing.B) {
	var worstRel float64
	for i := 0; i < b.N; i++ {
		rows, err := Fig13()
		if err != nil {
			b.Fatal(err)
		}
		worstRel = 0
		for _, r := range rows {
			rel := 100 * (r.NetCL.LatencyNs - r.P4.LatencyNs) / r.P4.LatencyNs
			if rel > worstRel {
				worstRel = rel
			}
		}
	}
	b.ReportMetric(worstRel, "worst-latency-delta-%")
}

// BenchmarkFig14AggThroughput regenerates the AGG end-to-end figure.
func BenchmarkFig14AggThroughput(b *testing.B) {
	var ate6 float64
	for i := 0; i < b.N; i++ {
		pts, err := Fig14Agg([]int{2, 4, 6}, 32)
		if err != nil {
			b.Fatal(err)
		}
		ate6 = pts[2].NetCLATE
	}
	b.ReportMetric(ate6/1e6, "MATE/s/worker-6w")
}

// BenchmarkFig14CacheLatency regenerates the CACHE end-to-end figure.
func BenchmarkFig14CacheLatency(b *testing.B) {
	var hit, miss float64
	for i := 0; i < b.N; i++ {
		pts, err := Fig14Cache([]int{0, 32}, 32, 64)
		if err != nil {
			b.Fatal(err)
		}
		miss, hit = pts[0].NetCLMeanUs, pts[1].NetCLMeanUs
	}
	b.ReportMetric(miss, "all-miss-us")
	b.ReportMetric(hit, "all-hit-us")
}

// Ablations of the §VI-B compiler flags ---------------------------------

// compileAggWith compiles AGG with the given flag configuration.
func compileAggWith(b *testing.B, opts Options) *DeviceArtifact {
	b.Helper()
	app := apps.ByName("AGG")
	opts.Defines = app.Defines
	opts.Devices = []uint16{1}
	opts.Target = TargetTNA
	art, err := Compile("agg", app.NetCL, opts)
	if err != nil {
		b.Fatal(err)
	}
	return art.Device(1)
}

// BenchmarkAblationSpeculation compares stage usage with and without
// aggressive speculation (paper: "speculation is what allowed one of
// the major programs in our evaluation to fit Tofino").
func BenchmarkAblationSpeculation(b *testing.B) {
	var on, off int
	var moved int
	for i := 0; i < b.N; i++ {
		dOn := compileAggWith(b, Options{})
		dOff := compileAggWith(b, Options{DisableSpeculation: true})
		on = p4c.Fit(dOn.P4, p4c.Tofino1()).StagesUsed
		off = p4c.Fit(dOff.P4, p4c.Tofino1()).StagesUsed
		moved = dOn.Stats.Speculated
	}
	b.ReportMetric(float64(on), "stages-speculation-on")
	b.ReportMetric(float64(off), "stages-speculation-off")
	b.ReportMetric(float64(moved), "speculated-instrs")
}

// BenchmarkAblationLookupDuplication compares SRAM cost with and
// without lookup-memory duplication (paper: duplication "could lead to
// excessive resource consumption and thus can be turned off").
func BenchmarkAblationLookupDuplication(b *testing.B) {
	const src = `
_net_ _lookup_ ncl::kv<unsigned,unsigned> tbl[65536];
_kernel(1) void k(unsigned a, unsigned b, unsigned &x, unsigned &y) {
  unsigned v1 = 0, v2 = 0;
  if (a > b) { ncl::lookup(tbl, a, v1); x = v1; }
  else       { ncl::lookup(tbl, b, v2); y = v2; }
}
`
	var withDup int
	var offCompiles float64
	for i := 0; i < b.N; i++ {
		on, err := Compile("dup-on", src, Options{Target: TargetTNA})
		if err != nil {
			b.Fatal(err)
		}
		withDup = p4c.Fit(on.Devices[0].P4, p4c.Tofino1()).SRAMBlocks
		// With duplication disabled the two accesses cannot share one
		// MAT: compilation must fail (the flag trades SRAM for
		// compilability, not the other way around).
		if _, err := Compile("dup-off", src, Options{Target: TargetTNA, DisableLookupDup: true}); err == nil {
			offCompiles = 1
		}
	}
	b.ReportMetric(float64(withDup), "sram-blocks-dup-on")
	b.ReportMetric(offCompiles, "dup-off-compiles")
}

// BenchmarkAblationCmpRewrite measures the dynamic-compare rewrite.
func BenchmarkAblationCmpRewrite(b *testing.B) {
	const src = `
_kernel(1) void k(uint16_t a, uint16_t b, uint8_t &lt) { lt = a < b; }
`
	var rewrites int
	for i := 0; i < b.N; i++ {
		art, err := Compile("cmp", src, Options{Target: TargetTNA, EnableCmpRewrite: true})
		if err != nil {
			b.Fatal(err)
		}
		rewrites = art.Devices[0].Stats.CmpRewrites
	}
	b.ReportMetric(float64(rewrites), "cmp-rewrites")
}

// Micro-benchmarks of the toolchain itself -------------------------------

// BenchmarkCompileCache measures full NetCL compilation of NetCache.
func BenchmarkCompileCache(b *testing.B) {
	app := apps.ByName("CACHE")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile("cache", app.NetCL, Options{
			Target: TargetTNA, Defines: app.Defines, Devices: []uint16{1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreterCachePacket measures per-packet interpreter cost.
func BenchmarkInterpreterCachePacket(b *testing.B) {
	var once sync.Once
	var setupErr error
	var run func() error
	once.Do(func() {
		res, err := apps.RunCache(apps.CacheConfig{CachedKeys: 8, TotalKeys: 16, Requests: 1, Target: passes.TargetTNA})
		_ = res
		setupErr = err
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
	run = func() error {
		_, err := apps.RunCache(apps.CacheConfig{CachedKeys: 8, TotalKeys: 16, Requests: 64, Target: passes.TargetTNA})
		return err
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Interpreter hot path ---------------------------------------------------

// BenchmarkInterpHotPath measures per-packet cost of both bmv2
// engines on each evaluation app's packet stream (the nclbench -interp
// comparison, as sub-benchmarks with allocation reporting).
func BenchmarkInterpHotPath(b *testing.B) {
	rows := []struct {
		app    string
		device uint16
	}{{"AGG", 1}, {"CACHE", 1}, {"PACC", apps.PaxosAcceptor1}, {"CALC", 1}, {"ACL", 1}}
	for _, r := range rows {
		w, err := apps.NewInterpWorkload(r.app, r.device, 256)
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []struct {
			name   string
			engine bmv2.Engine
		}{{"reference", bmv2.EngineReference}, {"compiled", bmv2.EngineCompiled}} {
			b.Run(r.app+"/"+eng.name, func(b *testing.B) {
				sw, err := w.Switch(eng.engine)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Run(sw); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pkt := w.Packets[i%len(w.Packets)]
					if _, err := sw.Process(pkt, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(r.app+"/compiled-burst32", func(b *testing.B) {
			sw, err := w.Switch(bmv2.EngineCompiled)
			if err != nil {
				b.Fatal(err)
			}
			res := make([]bmv2.Result, bmv2.MaxBurst)
			errs := make([]error, bmv2.MaxBurst)
			if err := w.RunBurst(sw, bmv2.MaxBurst, res, errs); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(w.Packets) {
				if err := w.RunBurst(sw, bmv2.MaxBurst, res, errs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHostSendPath measures the channel send path (pooled pack +
// post + complete over a null transport) — the `make bench-host`
// counterpart of the BENCH_hostpath.json sweep. Run with -benchmem:
// the steady state must stay allocation-free.
func BenchmarkHostSendPath(b *testing.B) {
	send, closeFn, err := apps.HostpathSender()
	if err != nil {
		b.Fatal(err)
	}
	defer closeFn()
	for i := 0; i < 64; i++ { // warm the buffer pool
		if err := send(i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send(i); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHostSendPathAllocs is the tier-2 allocation gate: the channel
// send path must average at most 2 heap allocations per message (the
// pooled steady state is 0; the bound leaves headroom for pool
// refills under GC pressure).
func TestHostSendPathAllocs(t *testing.T) {
	allocs, err := apps.HostpathSendAllocs(8192)
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 2 {
		t.Errorf("channel send path allocates %.2f allocs/msg, want <= 2", allocs)
	}
	t.Logf("send path: %.3f allocs/msg", allocs)
}
