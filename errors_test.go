package netcl

// Error-quality tests: each §V-D restriction and placement rule must
// produce a clear, actionable error through the public Compile API.

import (
	"strings"
	"testing"
)

func compileErr(t *testing.T, src string, opts Options, wantSub string) {
	t.Helper()
	_, err := Compile("bad", src, opts)
	if err == nil {
		t.Fatalf("expected error containing %q, compiled fine", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err.Error(), wantSub)
	}
}

func TestErrorMessages(t *testing.T) {
	tna := Options{Target: TargetTNA}

	t.Run("multi-access same path", func(t *testing.T) {
		compileErr(t, `
_net_ int m[42];
_kernel(1) void a(int x, int &out) {
  out = ncl::atomic_read(&m[0]) + ncl::atomic_read(&m[1]);
}
`, tna, "stage-local")
	})

	t.Run("order violation", func(t *testing.T) {
		compileErr(t, `
_net_ int m1[42], m2[42];
_kernel(1) void a(int x, int &out) {
  if (x > 10) { int t = ncl::atomic_read(&m1[0]); out = ncl::atomic_read(&m2[t]); }
  else        { int t = ncl::atomic_read(&m2[0]); out = ncl::atomic_read(&m1[t]); }
}
`, tna, "different orders")
	})

	t.Run("non-unrollable loop", func(t *testing.T) {
		compileErr(t, `
_kernel(1) void k(unsigned n, unsigned &x) {
  for (auto i = 0; i < n; ++i) x = x + 1;
}
`, tna, "unroll")
	})

	t.Run("goto", func(t *testing.T) {
		compileErr(t, `_kernel(1) void k(int x) { goto done; }`, tna, "goto")
	})

	t.Run("recursion", func(t *testing.T) {
		compileErr(t, `
_net_ void f(int x) { f(x); }
_kernel(1) void k(int x) { f(x); }
`, tna, "recursion")
	})

	t.Run("placement ambiguity", func(t *testing.T) {
		compileErr(t, `
_kernel(1) _at(1) void a(int x) {}
_kernel(1) void b(int x) {}
`, tna, "placement is ambiguous")
	})

	t.Run("reference validity", func(t *testing.T) {
		compileErr(t, `
_net_ _at(1,2) int m[4];
_kernel(1) void k(int x) { m[0] = x; }
`, tna, "placed only at")
	})

	t.Run("spec mismatch", func(t *testing.T) {
		compileErr(t, `
_kernel(1) _at(1) void a(int x[3]) {}
_kernel(1) _at(2) void b(int x[4]) {}
`, Options{Target: TargetTNA, Devices: []uint16{1}}, "specification")
	})

	t.Run("action outside return", func(t *testing.T) {
		compileErr(t, `_kernel(1) void k(int x) { ncl::drop(); }`, tna, "return statement")
	})

	t.Run("pointer assignment", func(t *testing.T) {
		compileErr(t, `_kernel(1) void k(int _spec(4) *v) { v = v; }`, tna, "pointer parameter")
	})

	t.Run("lookup write from device", func(t *testing.T) {
		compileErr(t, `
_net_ _lookup_ ncl::kv<int,int> a[] = {{1,2}};
_kernel(1) void k(int x) { a[0] = x; }
`, tna, "read-only")
	})

	t.Run("managed lookup multi access", func(t *testing.T) {
		// Mutually exclusive accesses are fine for _net_ lookups (they
		// get duplicated) but not for managed ones (the control plane
		// cannot bulk-update duplicates, §VI-B).
		compileErr(t, `
_managed_ _lookup_ ncl::kv<unsigned,unsigned> tbl[8];
_kernel(1) void k(unsigned a, unsigned b, unsigned &x, unsigned &y) {
  if (a > b) { ncl::lookup(tbl, a, x); }
  else       { ncl::lookup(tbl, b, y); }
}
`, tna, "managed")
	})
}

// TestV1ModelIsMorePermissive compiles a program that violates the
// Tofino memory rules but is fine on the software switch (the paper's
// "reject programs on a per-target basis" policy, §V-D).
func TestV1ModelIsMorePermissive(t *testing.T) {
	const src = `
_net_ int m[42];
_kernel(1) void a(int x, int &out) {
  out = ncl::atomic_read(&m[0]) + ncl::atomic_read(&m[1]);
}
`
	if _, err := Compile("p", src, Options{Target: TargetTNA}); err == nil {
		t.Fatal("TNA must reject the double access")
	}
	if _, err := Compile("p", src, Options{Target: TargetV1Model}); err != nil {
		t.Fatalf("v1model must accept it: %v", err)
	}
}
