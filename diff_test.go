package netcl

// Differential testing: the same NetCL kernel compiled for the TNA and
// v1model targets must produce identical messages and device state for
// identical inputs, and both must match a plain-Go reference model.
// This exercises the full atomic matrix of Table I, width conversions,
// and the lookup kinds, with pseudo-random inputs (testing/quick).

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// twin compiles one kernel for both targets and returns both switches.
func twin(t *testing.T, src string) (*bmv2.Switch, *bmv2.Switch, *MessageSpec) {
	t.Helper()
	var sws []*bmv2.Switch
	var spec *MessageSpec
	for _, target := range []Target{TargetTNA, TargetV1Model} {
		art, err := Compile("twin", src, Options{Target: target, Devices: []uint16{1}})
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		sw := bmv2.New(art.Device(1).P4)
		if err := sw.InsertEntry("netcl_fwd", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: 1}},
			Action: &p4.ActionCall{Name: "set_port", Args: []uint64{1}},
		}); err != nil {
			t.Fatal(err)
		}
		if err := sw.InsertEntry("netcl_fwd", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: 2}},
			Action: &p4.ActionCall{Name: "set_port", Args: []uint64{2}},
		}); err != nil {
			t.Fatal(err)
		}
		sws = append(sws, sw)
		spec = art.Specs[1]
	}
	return sws[0], sws[1], spec
}

// shoot sends one message through a switch and returns the unpacked
// output values (nil if dropped).
func shoot(t *testing.T, sw *bmv2.Switch, spec *MessageSpec, args [][]uint64) ([][]uint64, *wire.Header) {
	t.Helper()
	msg, err := Pack(spec, Message{Src: 1, Dst: 2, Device: 1, Comp: 1}.Header(), args)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Process(runtime.Frame(msg, 1, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped {
		return nil, nil
	}
	out, ok := runtime.Deframe(res.Data)
	if !ok {
		t.Fatal("not a netcl frame")
	}
	vals := make([][]uint64, len(spec.Args))
	for i, a := range spec.Args {
		vals[i] = make([]uint64, a.Count)
	}
	hdr, err := Unpack(spec, out, vals)
	if err != nil {
		t.Fatal(err)
	}
	return vals, &hdr
}

func equalVals(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// TestDifferentialAtomics drives every atomic operation with random
// inputs on both targets and checks outputs and final register state
// against a Go reference.
func TestDifferentialAtomics(t *testing.T) {
	type aCase struct {
		name string
		// ref computes (newMem, result) from (mem, cond, operand).
		ref func(m uint64, cond bool, v uint64) (uint64, uint64)
	}
	sat := func(x uint64) uint64 {
		if x > 0xFFFFFFFF {
			return 0xFFFFFFFF
		}
		return x
	}
	cases := []aCase{
		{"atomic_add", func(m uint64, _ bool, v uint64) (uint64, uint64) {
			return (m + v) & 0xFFFFFFFF, m
		}},
		{"atomic_add_new", func(m uint64, _ bool, v uint64) (uint64, uint64) {
			n := (m + v) & 0xFFFFFFFF
			return n, n
		}},
		{"atomic_sadd_new", func(m uint64, _ bool, v uint64) (uint64, uint64) {
			n := sat(m + v)
			return n, n
		}},
		{"atomic_sub", func(m uint64, _ bool, v uint64) (uint64, uint64) {
			return (m - v) & 0xFFFFFFFF, m
		}},
		{"atomic_ssub_new", func(m uint64, _ bool, v uint64) (uint64, uint64) {
			if v > m {
				return 0, 0
			}
			return m - v, m - v
		}},
		{"atomic_or", func(m uint64, _ bool, v uint64) (uint64, uint64) { return m | v, m }},
		{"atomic_and", func(m uint64, _ bool, v uint64) (uint64, uint64) { return m & v, m }},
		{"atomic_xor_new", func(m uint64, _ bool, v uint64) (uint64, uint64) { return m ^ v, m ^ v }},
		{"atomic_min_new", func(m uint64, _ bool, v uint64) (uint64, uint64) {
			if v < m {
				return v, v
			}
			return m, m
		}},
		{"atomic_max", func(m uint64, _ bool, v uint64) (uint64, uint64) {
			if v > m {
				return v, m
			}
			return m, m
		}},
		{"atomic_swap", func(m uint64, _ bool, v uint64) (uint64, uint64) { return v, m }},
		{"atomic_cond_add_new", func(m uint64, c bool, v uint64) (uint64, uint64) {
			if c {
				n := (m + v) & 0xFFFFFFFF
				return n, n
			}
			return m, m
		}},
		{"atomic_cond_dec", func(m uint64, c bool, _ uint64) (uint64, uint64) {
			if c {
				n := m
				if n > 0 {
					n--
				}
				return n, m
			}
			return m, m
		}},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			operand := ", v"
			if c.name == "atomic_cond_dec" {
				operand = ""
			}
			condArg := ""
			if c.name == "atomic_cond_add_new" || c.name == "atomic_cond_dec" {
				condArg = "cond != 0,"
			}
			src := fmt.Sprintf(`
_net_ unsigned M[16];
_kernel(1) void k(unsigned idx, unsigned v, unsigned cond, unsigned &out) {
  out = ncl::%s(&M[idx & 15], %s 0%s);
  return ncl::reflect();
}
`, c.name, condArg, operand)
			// The "0, v" trick doesn't type-check; build args properly.
			args := "&M[idx & 15]"
			if condArg != "" {
				args += ", cond != 0"
			}
			if operand != "" {
				args += ", v"
			}
			src = fmt.Sprintf(`
_net_ unsigned M[16];
_kernel(1) void k(unsigned idx, unsigned v, unsigned cond, unsigned &out) {
  out = ncl::%s(%s);
  return ncl::reflect();
}
`, c.name, args)
			tna, v1, spec := twin(t, src)
			mem := make([]uint64, 16)
			rng := rand.New(rand.NewSource(42))
			for iter := 0; iter < 40; iter++ {
				idx := uint64(rng.Intn(16))
				v := uint64(rng.Uint32())
				if iter%5 == 0 {
					v = 0xFFFFFFF0 + uint64(rng.Intn(16)) // saturation edge
				}
				cond := uint64(rng.Intn(2))
				in := [][]uint64{{idx}, {v}, {cond}, nil}
				outT, hT := shoot(t, tna, spec, in)
				outV, hV := shoot(t, v1, spec, in)
				if !equalVals(outT, outV) || hT.Act != hV.Act {
					t.Fatalf("iter %d: targets diverge: %v vs %v", iter, outT, outV)
				}
				wantMem, wantOut := c.ref(mem[idx], cond != 0, v)
				mem[idx] = wantMem
				if outT[3][0] != wantOut {
					t.Fatalf("iter %d: result %d, reference %d (mem was %d, v=%d cond=%d)",
						iter, outT[3][0], wantOut, wantMem, v, cond)
				}
				got, err := tna.RegisterRead("reg_M", int(idx))
				if err != nil {
					t.Fatal(err)
				}
				if got != wantMem {
					t.Fatalf("iter %d: memory %d, reference %d", iter, got, wantMem)
				}
			}
		})
	}
}

// TestDifferentialArithmetic compares a compute-dense kernel across
// targets with quick-generated inputs.
func TestDifferentialArithmetic(t *testing.T) {
	const src = `
_kernel(1) void k(unsigned a, unsigned b, uint8_t sh, unsigned &x, unsigned &y, unsigned &z) {
  x = (a + b) * 3 - (a ^ b);
  y = (a >> (sh & 31)) | (b << (sh & 7));
  z = ncl::min(a, b) + ncl::max(a & 0xFF, b & 0xFF) + ncl::sadd(a, b);
  return ncl::reflect();
}
`
	tna, v1, spec := twin(t, src)
	f := func(a, b uint32, sh uint8) bool {
		in := [][]uint64{{uint64(a)}, {uint64(b)}, {uint64(sh)}, nil, nil, nil}
		outT, _ := shoot(t, tna, spec, in)
		outV, _ := shoot(t, v1, spec, in)
		if !equalVals(outT, outV) {
			return false
		}
		// Reference for x.
		wantX := uint32((a+b)*3 - (a ^ b))
		return outT[3][0] == uint64(wantX)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialLookupKinds checks set/kv/rv lookups across targets.
func TestDifferentialLookupKinds(t *testing.T) {
	const src = `
_net_ _lookup_ unsigned allow[] = {3, 5, 8, 13};
_net_ _lookup_ ncl::kv<unsigned, unsigned> m[] = {{1,100},{2,200},{7,700}};
_net_ _lookup_ ncl::rv<unsigned, unsigned> r[] = {{{0,9},1},{{10,99},2},{{100,999},3}};
_kernel(1) void k(unsigned x, uint8_t &inSet, unsigned &mv, unsigned &rv_out) {
  inSet = ncl::lookup(allow, x);
  ncl::lookup(m, x, mv);
  ncl::lookup(r, x, rv_out);
  return ncl::reflect();
}
`
	tna, v1, spec := twin(t, src)
	kvRef := map[uint64]uint64{1: 100, 2: 200, 7: 700}
	setRef := map[uint64]bool{3: true, 5: true, 8: true, 13: true}
	rvRef := func(x uint64) uint64 {
		switch {
		case x <= 9:
			return 1
		case x <= 99:
			return 2
		case x <= 999:
			return 3
		}
		return 0
	}
	for x := uint64(0); x < 1200; x += 7 {
		in := [][]uint64{{x}, nil, nil, nil}
		outT, _ := shoot(t, tna, spec, in)
		outV, _ := shoot(t, v1, spec, in)
		if !equalVals(outT, outV) {
			t.Fatalf("x=%d: targets diverge", x)
		}
		if got := outT[1][0] != 0; got != setRef[x] {
			t.Errorf("x=%d: set membership %v, want %v", x, got, setRef[x])
		}
		if outT[2][0] != kvRef[x] {
			t.Errorf("x=%d: kv %d, want %d", x, outT[2][0], kvRef[x])
		}
		if outT[3][0] != rvRef(x) {
			t.Errorf("x=%d: rv %d, want %d", x, outT[3][0], rvRef(x))
		}
	}
}

// TestDifferentialBitOps checks bswap/clz/ctz/bit_chk on both targets.
func TestDifferentialBitOps(t *testing.T) {
	const src = `
_kernel(1) void k(unsigned x, uint8_t pos, unsigned &sw, unsigned &lead, unsigned &trail, uint8_t &bit) {
  sw = ncl::bswap(x);
  lead = ncl::clz(x);
  trail = ncl::ctz(x);
  bit = ncl::bit_chk(x, pos & 31);
  return ncl::reflect();
}
`
	tna, v1, spec := twin(t, src)
	ref := func(x uint32) (uint32, uint32, uint32) {
		sw := x<<24 | (x&0xFF00)<<8 | (x>>8)&0xFF00 | x>>24
		lead := uint32(32)
		for i := 31; i >= 0; i-- {
			if x>>uint(i)&1 != 0 {
				lead = uint32(31 - i)
				break
			}
		}
		trail := uint32(32)
		for i := 0; i < 32; i++ {
			if x>>uint(i)&1 != 0 {
				trail = uint32(i)
				break
			}
		}
		return sw, lead, trail
	}
	f := func(x uint32, pos uint8) bool {
		in := [][]uint64{{uint64(x)}, {uint64(pos)}, nil, nil, nil, nil}
		outT, _ := shoot(t, tna, spec, in)
		outV, _ := shoot(t, v1, spec, in)
		if !equalVals(outT, outV) {
			return false
		}
		sw, lead, trail := ref(x)
		wantBit := uint64(0)
		if x>>(uint(pos)&31)&1 != 0 {
			wantBit = 1
		}
		return outT[2][0] == uint64(sw) && outT[3][0] == uint64(lead) &&
			outT[4][0] == uint64(trail) && outT[5][0] == wantBit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
