package netcl

// End-to-end tests of NetCL features beyond the headline applications:
// multi-device computation chains (send_to_device), reflect_long,
// multiple computations on one device, runtime cache eviction through
// managed lookup memory, and ncl::rand.

import (
	"testing"

	"netcl/internal/netsim"
	"netcl/internal/p4"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// buildChain compiles a program for a device and returns its netsim
// pieces.
func compileFor(t *testing.T, src string, dev uint16, defs map[string]uint64) (*p4.Program, map[uint8]*MessageSpec) {
	t.Helper()
	art, err := Compile("feat", src, Options{Target: TargetTNA, Devices: []uint16{dev}, Defines: defs})
	if err != nil {
		t.Fatal(err)
	}
	return art.Device(dev).P4, art.Specs
}

// TestSendToDeviceChain reproduces the paper's Figure 5 circle
// computation: h1 sends through dev2, which computes and forwards the
// message to dev3 with send_to_device; dev3 computes and passes it on
// to the destination host h4. Intermediate transit is a no-op
// (no-implicit-computation).
func TestSendToDeviceChain(t *testing.T) {
	const src = `
#define STAGE1 2
#define STAGE2 3

_at(STAGE1) _kernel(1) void first(unsigned &x, uint16_t &via) {
  x = x + 100;
  via = msg.from;
  return ncl::send_to_device(STAGE2);
}
_at(STAGE2) _kernel(1) void second(unsigned &x, uint16_t &via) {
  x = x * 2;
  via = msg.from;
  return ncl::pass();
}
`
	n := netsim.NewNetwork()
	prog2, specs := compileFor(t, src, 2, nil)
	prog3, _ := compileFor(t, src, 3, nil)
	spec := specs[1]

	h1 := n.AddHost(100)
	h4 := n.AddHost(104)
	d2 := n.AddDevice(2, prog2)
	d3 := n.AddDevice(3, prog3)
	n.Connect(h1, d2, 1)
	n.ConnectDevices(d2, 2, d3, 1)
	n.Connect(h4, d3, 2)
	if err := n.AutoWire(); err != nil {
		t.Fatal(err)
	}

	var gotX, gotVia uint64
	var gotHdr wire.Header
	h4.SetReceive(func(h *netsim.Host, msg []byte) {
		x := make([]uint64, 1)
		via := make([]uint64, 1)
		hdr, err := runtime.Unpack(spec, msg, [][]uint64{x, via})
		if err != nil {
			t.Error(err)
			return
		}
		gotX, gotVia, gotHdr = x[0], via[0], hdr
	})
	msg, err := Pack(spec, Message{Src: 100, Dst: 104, Device: 2, Comp: 1}.Header(),
		[][]uint64{{5}, nil})
	if err != nil {
		t.Fatal(err)
	}
	h1.Send(msg)
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	// (5+100)*2 = 210: both kernels ran, in order.
	if gotX != 210 {
		t.Errorf("x = %d, want 210", gotX)
	}
	// At dev3, the previous hop was device 2 (§IV).
	if gotVia != 2 {
		t.Errorf("msg.from at second hop = %d, want 2", gotVia)
	}
	if gotHdr.From != 3 {
		t.Errorf("final from = %d, want 3 (last computing device)", gotHdr.From)
	}
}

// TestReflectLongFromChain checks reflect_long: the second device
// returns the message to the SOURCE HOST, not the previous device.
func TestReflectLongFromChain(t *testing.T) {
	const src = `
_at(2) _kernel(1) void a(unsigned &x) { x = x + 1; return ncl::send_to_device(3); }
_at(3) _kernel(1) void b(unsigned &x) { x = x + 10; return ncl::reflect_long(); }
`
	n := netsim.NewNetwork()
	prog2, specs := compileFor(t, src, 2, nil)
	prog3, _ := compileFor(t, src, 3, nil)
	spec := specs[1]
	h1 := n.AddHost(100)
	h9 := n.AddHost(109)
	d2 := n.AddDevice(2, prog2)
	d3 := n.AddDevice(3, prog3)
	n.Connect(h1, d2, 1)
	n.ConnectDevices(d2, 2, d3, 1)
	n.Connect(h9, d3, 2)
	if err := n.AutoWire(); err != nil {
		t.Fatal(err)
	}
	got := uint64(0)
	h1.SetReceive(func(h *netsim.Host, msg []byte) {
		x := make([]uint64, 1)
		if _, err := runtime.Unpack(spec, msg, [][]uint64{x}); err == nil {
			got = x[0]
		}
	})
	wrong := false
	h9.SetReceive(func(h *netsim.Host, msg []byte) { wrong = true })
	msg, _ := Pack(spec, Message{Src: 100, Dst: 109, Device: 2, Comp: 1}.Header(), [][]uint64{{1}})
	h1.Send(msg)
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Errorf("reflect_long result = %d, want 12", got)
	}
	if wrong {
		t.Error("message must return to the source host, not continue to dst")
	}
}

// TestMultipleComputationsOneDevice runs two computations on one
// switch, checking dispatch and per-computation message layouts.
func TestMultipleComputationsOneDevice(t *testing.T) {
	const src = `
_net_ unsigned Counter;
_kernel(1) void bump(unsigned &n) {
  n = ncl::atomic_add_new(&Counter, 1);
  return ncl::reflect();
}
_kernel(2) void peek(unsigned &n, uint8_t &flag) {
  n = ncl::atomic_read(&Counter);
  flag = 1;
  return ncl::reflect();
}
`
	art, err := Compile("multi", src, Options{Target: TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(art.Devices[0].P4)
	if err := sw.InsertEntry("netcl_fwd", &TableEntry{
		Keys:   []KeyValue{{Value: 1}},
		Action: &ActionCall{Name: "set_port", Args: []uint64{1}},
	}); err != nil {
		t.Fatal(err)
	}
	send := func(comp uint8, args [][]uint64, spec *MessageSpec) [][]uint64 {
		msg, err := Pack(spec, Message{Src: 1, Dst: 2, Device: 1, Comp: comp}.Header(), args)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sw.Process(runtime.Frame(msg, 1, 2), 1)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := runtime.Deframe(res.Data)
		vals := make([][]uint64, len(spec.Args))
		for i, a := range spec.Args {
			vals[i] = make([]uint64, a.Count)
		}
		if _, err := runtime.Unpack(spec, out, vals); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	for want := uint64(1); want <= 3; want++ {
		got := send(1, [][]uint64{nil}, art.Specs[1])
		if got[0][0] != want {
			t.Errorf("bump %d: got %d", want, got[0][0])
		}
	}
	got := send(2, [][]uint64{nil, nil}, art.Specs[2])
	if got[0][0] != 3 || got[1][0] != 1 {
		t.Errorf("peek: n=%d flag=%d", got[0][0], got[1][0])
	}
}

// TestCacheEvictionAtRuntime exercises the NetCache controller loop
// the paper describes (§II: "modifying MATs, such as for cache
// eviction, is done via the control plane"): insert a key, observe
// hits, evict it, observe misses.
func TestCacheEvictionAtRuntime(t *testing.T) {
	app := AppByName("CACHE")
	art, err := Compile("cache", app.NetCL, Options{
		Target: TargetTNA, Defines: app.Defines, Devices: []uint16{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(art.Device(1).P4)
	if err := sw.InsertEntry("netcl_fwd", &TableEntry{
		Keys: []KeyValue{{Value: 1}}, Action: &ActionCall{Name: "set_port", Args: []uint64{1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.InsertEntry("netcl_fwd", &TableEntry{
		Keys: []KeyValue{{Value: 2}}, Action: &ActionCall{Name: "set_port", Args: []uint64{2}},
	}); err != nil {
		t.Fatal(err)
	}
	conn := Connect(DirectControlPlane(sw), art.Device(1))

	// Controller installs key 7 at cache line 3 with full word share.
	if err := conn.LookupInsert("Index", 7, 3); err != nil {
		t.Fatal(err)
	}
	if err := conn.LookupInsert("Share", 7, 0xFFFF); err != nil {
		t.Fatal(err)
	}
	if err := conn.ManagedWrite("Valid", []int{3}, 1); err != nil {
		t.Fatal(err)
	}
	if err := conn.ManagedWrite("Vals", []int{0, 3}, 777); err != nil {
		t.Fatal(err)
	}

	spec := art.Specs[1]
	get := func() (hit uint64, v0 uint64) {
		msg, err := Pack(spec, Message{Src: 1, Dst: 2, Device: 1, Comp: 1}.Header(),
			[][]uint64{{1}, {7}, nil, nil, nil})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sw.Process(runtime.Frame(msg, 1, 2), 1)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := runtime.Deframe(res.Data)
		val := make([]uint64, spec.Args[2].Count)
		h := make([]uint64, 1)
		if _, err := runtime.Unpack(spec, out, [][]uint64{nil, nil, val, h, nil}); err != nil {
			t.Fatal(err)
		}
		return h[0], val[0]
	}
	if hit, v0 := get(); hit != 1 || v0 != 777 {
		t.Fatalf("pre-eviction GET: hit=%d v0=%d", hit, v0)
	}
	// Hit counter advanced (observable via managed_read).
	hits, err := conn.ManagedRead("HitCount", []int{3})
	if err != nil || hits != 1 {
		t.Fatalf("hit counter: %d %v", hits, err)
	}

	// Controller evicts the key.
	if _, err := conn.LookupDelete("Index", 7); err != nil {
		t.Fatal(err)
	}
	if hit, _ := get(); hit != 0 {
		t.Error("post-eviction GET should miss")
	}
}

// TestRandIsDeterministicPerSwitch checks ncl::rand compiles and
// produces values within the requested width, deterministically for a
// given switch instance.
func TestRandIsDeterministicPerSwitch(t *testing.T) {
	const src = `
_kernel(1) void k(uint8_t &r) {
  r = ncl::rand<u8>();
  return ncl::reflect();
}
`
	run := func() []uint64 {
		art, err := Compile("rand", src, Options{Target: TargetTNA})
		if err != nil {
			t.Fatal(err)
		}
		sw := NewSwitch(art.Devices[0].P4)
		if err := sw.InsertEntry("netcl_fwd", &TableEntry{
			Keys: []KeyValue{{Value: 1}}, Action: &ActionCall{Name: "set_port", Args: []uint64{1}},
		}); err != nil {
			t.Fatal(err)
		}
		spec := art.Specs[1]
		var out []uint64
		for i := 0; i < 4; i++ {
			msg, _ := Pack(spec, Message{Src: 1, Dst: 2, Device: 1, Comp: 1}.Header(), [][]uint64{nil})
			res, err := sw.Process(runtime.Frame(msg, 1, 2), 1)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := runtime.Deframe(res.Data)
			r := make([]uint64, 1)
			if _, err := runtime.Unpack(spec, raw, [][]uint64{r}); err != nil {
				t.Fatal(err)
			}
			if r[0] > 0xFF {
				t.Fatalf("rand<u8> out of range: %d", r[0])
			}
			out = append(out, r[0])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("rand not deterministic per fresh switch: %v vs %v", a, b)
		}
	}
}

// TestSPMDMultiLocationKernel places ONE kernel at two devices and
// branches on device.id (the §V-C SPMD style): each copy behaves
// differently, and device.id is materialized at compile time.
func TestSPMDMultiLocationKernel(t *testing.T) {
	const src = `
_at(1,2) _net_ unsigned Seen;
_at(1,2) _kernel(1) void spmd(unsigned &x, uint16_t &who) {
  ncl::atomic_inc(&Seen);
  who = device.id;
  if (device.id == 1) x = x + 1000;
  else                x = x + 2000;
  return ncl::reflect();
}
`
	for dev, delta := range map[uint16]uint64{1: 1000, 2: 2000} {
		prog, specs := compileFor(t, src, dev, nil)
		spec := specs[1]
		sw := NewSwitch(prog)
		if err := sw.InsertEntry("netcl_fwd", &TableEntry{
			Keys: []KeyValue{{Value: 9}}, Action: &ActionCall{Name: "set_port", Args: []uint64{1}},
		}); err != nil {
			t.Fatal(err)
		}
		msg, _ := Pack(spec, Message{Src: 9, Dst: 9, Device: dev, Comp: 1}.Header(), [][]uint64{{5}, nil})
		res, err := sw.Process(runtime.Frame(msg, 1, 2), 1)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := runtime.Deframe(res.Data)
		x := make([]uint64, 1)
		who := make([]uint64, 1)
		if _, err := runtime.Unpack(spec, raw, [][]uint64{x, who}); err != nil {
			t.Fatal(err)
		}
		if x[0] != 5+delta || who[0] != uint64(dev) {
			t.Errorf("device %d: x=%d who=%d", dev, x[0], who[0])
		}
		// Per-device memory copies are independent (§V-C): each switch
		// has its own Seen register.
		v, err := sw.RegisterRead("reg_Seen", 0)
		if err != nil || v != 1 {
			t.Errorf("device %d: Seen=%d %v", dev, v, err)
		}
	}
}

// TestManagedThresholdReconfiguration mirrors the paper's §V-B
// example: a _managed_ threshold variable is reconfigured from host
// code through the control plane, changing device behavior without
// recompilation or extra messages.
func TestManagedThresholdReconfiguration(t *testing.T) {
	const src = `
_managed_ unsigned thresh;
_net_ unsigned Count;
_kernel(1) void watch(unsigned v, uint8_t &alarm) {
  unsigned c = ncl::atomic_add_new(&Count, v);
  unsigned lim = ncl::atomic_read(&thresh);
  if (c > lim) alarm = 1;
  return ncl::reflect();
}
`
	art, err := Compile("thresh", src, Options{Target: TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(art.Devices[0].P4)
	if err := sw.InsertEntry("netcl_fwd", &TableEntry{
		Keys: []KeyValue{{Value: 1}}, Action: &ActionCall{Name: "set_port", Args: []uint64{1}},
	}); err != nil {
		t.Fatal(err)
	}
	conn := Connect(DirectControlPlane(sw), art.Devices[0])
	// The paper's listing: ncl::managed_write(c, &thresh, 512).
	if err := conn.ManagedWrite("thresh", nil, 512); err != nil {
		t.Fatal(err)
	}
	spec := art.Specs[1]
	send := func(v uint64) uint64 {
		msg, err := Pack(spec, Message{Src: 1, Dst: 2, Device: 1, Comp: 1}.Header(),
			[][]uint64{{v}, nil})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sw.Process(runtime.Frame(msg, 1, 2), 1)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := runtime.Deframe(res.Data)
		alarm := make([]uint64, 1)
		if _, err := runtime.Unpack(spec, raw, [][]uint64{nil, alarm}); err != nil {
			t.Fatal(err)
		}
		return alarm[0]
	}
	if send(100) != 0 { // count 100 <= 512
		t.Error("below threshold should not alarm")
	}
	if send(500) != 1 { // count 600 > 512
		t.Error("above threshold should alarm")
	}
	// Host raises the threshold at runtime; alarms stop.
	if err := conn.ManagedWrite("thresh", nil, 1000000); err != nil {
		t.Fatal(err)
	}
	if send(10) != 0 {
		t.Error("raised threshold should silence the alarm")
	}
	// And reads back (ncl::managed_read).
	v, err := conn.ManagedRead("thresh", nil)
	if err != nil || v != 1000000 {
		t.Errorf("managed_read: %d %v", v, err)
	}
}

// TestPerDeviceManagedCopies mirrors the §V-C example: a multi-located
// _managed_ variable has an independent copy per device; writes through
// one device's connection do not affect the other (no consistency
// guarantees between copies).
func TestPerDeviceManagedCopies(t *testing.T) {
	const src = `
_net_ _managed_ _at(1,2) unsigned m;
_kernel(1) _at(1,2) void k(unsigned &x) {
  x = ncl::atomic_read(&m);
  return ncl::reflect();
}
`
	art, err := Compile("copies", src, Options{Target: TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	sw1 := NewSwitch(art.Device(1).P4)
	sw2 := NewSwitch(art.Device(2).P4)
	dev1 := Connect(DirectControlPlane(sw1), art.Device(1))
	dev2 := Connect(DirectControlPlane(sw2), art.Device(2))
	// The paper's sequence: write 1 via dev1, 2 via dev2, read dev1.
	if err := dev1.ManagedWrite("m", nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := dev2.ManagedWrite("m", nil, 2); err != nil {
		t.Fatal(err)
	}
	a, err := dev1.ManagedRead("m", nil)
	if err != nil || a != 1 {
		t.Errorf("dev1 copy: %d %v (want 1)", a, err)
	}
	b, _ := dev2.ManagedRead("m", nil)
	if b != 2 {
		t.Errorf("dev2 copy: %d (want 2)", b)
	}
}
