package netcl

import (
	"netcl/internal/apps"
	"netcl/internal/bmv2"
	"netcl/internal/netsim"
	"netcl/internal/p4"
	"netcl/internal/p4rt"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// Public facade: the runtime, simulator, and control-plane types that
// host applications use, re-exported from the internal packages so
// downstream code only imports this package.

// Messaging (the ncl:: host library of Table I).
type (
	// Message mirrors ncl::message: source and destination hosts, the
	// device asked to compute, and the computation id.
	Message = runtime.Message
	// MessageSpec is a computation's message layout (from kernel
	// specifications, §V-A).
	MessageSpec = runtime.MessageSpec
	// Header is the NetCL wire header (src, dst, from, to, comp, act,
	// arg — Fig. 10).
	Header = wire.Header
)

// Pack serializes a NetCL message (ncl::pack).
var Pack = runtime.Pack

// Unpack deserializes a NetCL message (ncl::unpack).
var Unpack = runtime.Unpack

// Reliable messaging (the Endpoint API).
type (
	// Endpoint is the unified host-side messaging surface: Send is
	// fire-and-forget, Recv suppresses duplicates, Call is a reliable
	// request/response with retransmission and exponential backoff.
	// Both the real-UDP HostConn and the simulator's HostEndpoint
	// implement it.
	Endpoint = runtime.Endpoint
	// ReliabilityConfig carries the retransmission knobs (timeout,
	// retry budget, backoff, dedup window).
	ReliabilityConfig = runtime.ReliabilityConfig
	// RelStats counts reliability-layer events (retransmits, dups, acks).
	RelStats = runtime.RelStats
	// HostEndpoint adapts a simulated host to the Endpoint interface.
	HostEndpoint = netsim.HostEndpoint
	// FaultSpec injects seeded probabilistic loss/duplication into the
	// real-UDP backend for chaos testing.
	FaultSpec = runtime.FaultSpec
	// FaultConfig is the simulator's richer fault model (loss, jitter,
	// duplication), armed with Network.InjectFaults.
	FaultConfig = netsim.FaultConfig
)

// Pipelined messaging (the windowed host path, DESIGN.md §9).
type (
	// Channel slides a window of unacked reliable messages over an
	// Endpoint's transport: one shared retransmit timer, per-entry
	// exponential backoff, anti-replay dedup. Created with
	// HostConn.NewChannel or HostEndpoint.NewChannel.
	Channel = runtime.Channel
	// ChannelConfig sizes the window and names the metrics gauges.
	ChannelConfig = runtime.ChannelConfig
	// ChannelStats snapshots the channel counters (sent, completed,
	// retransmits, duplicates, peak in-flight).
	ChannelStats = runtime.ChannelStats
	// Pending is an in-flight windowed call; Wait blocks for its
	// response.
	Pending = runtime.Pending
)

// PackAppend is Pack into a caller-owned buffer (zero-alloc with
// GetBuf/PutBuf scratch).
var PackAppend = runtime.PackAppend

// UnpackInto is Unpack without retained allocations; it also accepts
// seq-trailered payloads from the reliable layer.
var UnpackInto = runtime.UnpackInto

// GetBuf and PutBuf recycle packing scratch through a pool.
var (
	GetBuf = runtime.GetBuf
	PutBuf = runtime.PutBuf
)

// Reliability errors and helpers.
var (
	// ErrTimeout reports that no message arrived within the deadline.
	ErrTimeout = runtime.ErrTimeout
	// ErrRetryBudget reports an exhausted retransmission budget.
	ErrRetryBudget = runtime.ErrRetryBudget
	// IsTimeout classifies receive errors as retryable timeouts.
	IsTimeout = runtime.IsTimeout
)

// Wire constants.
const (
	// NoNode marks an absent node id in a header's From/To fields.
	NoNode = wire.None
	// ActReflect et al. are the action codes of Table II.
	ActPass        = wire.ActPass
	ActDrop        = wire.ActDrop
	ActSendHost    = wire.ActSendHost
	ActSendDevice  = wire.ActSendDevice
	ActMulticast   = wire.ActMulticast
	ActReflect     = wire.ActReflect
	ActReflectLong = wire.ActReflectLong
)

// Simulation (the testbed substrate).
type (
	// Network is the discrete-event network simulator.
	Network = netsim.Network
	// Host is a simulated end system running Go callbacks.
	Host = netsim.Host
	// Device is a simulated P4 switch.
	Device = netsim.Device
	// SimTime is simulated time in nanoseconds.
	SimTime = netsim.Time
	// Switch is the behavioral-model P4 interpreter.
	Switch = bmv2.Switch
	// TableEntry is a match-action table entry.
	TableEntry = p4.Entry
	// KeyValue is one matched key of a table entry.
	KeyValue = p4.KeyValue
	// ActionCall invokes a table action with constant arguments.
	ActionCall = p4.ActionCall
)

// NewNetwork creates an empty simulated network.
func NewNetwork() *Network { return netsim.NewNetwork() }

// NewSwitch instantiates a behavioral-model switch for a program.
func NewSwitch(prog *p4.Program) *Switch { return bmv2.New(prog) }

// Control plane and managed memory (requirement R6).
type (
	// ControlPlane is the device control-plane surface (P4Runtime-like):
	// register reads plus transactional write batches.
	ControlPlane = p4rt.Client
	// WriteBatch groups control-plane mutations into one all-or-nothing
	// transaction: a packet observes the whole batch or none of it.
	WriteBatch = p4rt.WriteBatch
	// WriteResult reports per-op outcomes of a committed batch.
	WriteResult = p4rt.WriteResult
	// BatchError names the op that failed a Write; the batch had no
	// effect.
	BatchError = p4rt.BatchError
	// DeviceConnection mirrors ncl::device_connection: _managed_
	// memory access by NetCL-level names.
	DeviceConnection = runtime.DeviceConnection
	// ManagedTxn batches managed-memory mutations (register writes,
	// lookup inserts/deletes) into one transactional commit with
	// write-combining. Created with DeviceConnection.Txn.
	ManagedTxn = runtime.ManagedTxn
)

// NewWriteBatch returns an empty control-plane transaction.
func NewWriteBatch() *WriteBatch { return p4rt.NewWriteBatch() }

// DirectControlPlane binds a control plane to an in-process switch.
func DirectControlPlane(sw *Switch) ControlPlane { return &p4rt.Direct{SW: sw} }

// Connect builds a managed-memory connection for a compiled device.
func Connect(cp ControlPlane, dev *DeviceArtifact) *DeviceConnection {
	return &runtime.DeviceConnection{CP: cp, Mems: dev.Module.Mems}
}

// Real-UDP deployment backend.
type (
	// UDPDevice runs a compiled program behind a UDP socket.
	UDPDevice = runtime.UDPDevice
	// HostConn is a host-side UDP endpoint for NetCL messages; it
	// implements Endpoint.
	HostConn = runtime.HostConn
	// DeviceConfig parameterizes a UDP device process (id, address,
	// program, fault injection).
	DeviceConfig = runtime.DeviceConfig
	// DialConfig parameterizes a UDP host endpoint (id, addresses,
	// reliability knobs).
	DialConfig = runtime.DialConfig
)

// ServeDevice starts a UDP device process described by cfg.
func ServeDevice(cfg DeviceConfig) (*UDPDevice, error) {
	return runtime.ServeDevice(cfg)
}

// Dial opens a UDP host endpoint described by cfg.
func Dial(cfg DialConfig) (*HostConn, error) {
	return runtime.Dial(cfg)
}

// ServeUDPDevice starts a device process on a UDP address.
//
// Deprecated: use ServeDevice with a DeviceConfig, which also carries
// the fault-injection knobs.
func ServeUDPDevice(id uint16, addr string, prog *p4.Program) (*UDPDevice, error) {
	return runtime.ServeUDPDevice(id, addr, prog)
}

// DialUDP opens a host endpoint targeting a device address.
//
// Deprecated: use Dial with a DialConfig, which also carries the
// reliability knobs.
func DialUDP(id uint16, local, device string) (*HostConn, error) {
	return runtime.DialUDP(id, local, device)
}

// Evaluation applications (§VII), exposed for examples and tools.
type (
	// App is one of the paper's evaluation applications.
	App = apps.App
	// AggConfig/CacheConfig/PaxosConfig parameterize the end-to-end
	// experiment drivers of Figure 14 (simulated network).
	AggConfig   = apps.AggConfig
	CacheConfig = apps.CacheConfig
	PaxosConfig = apps.PaxosConfig
	// AggUDPConfig/PaxosUDPConfig drive the same workloads over the
	// real-UDP backend.
	AggUDPConfig   = apps.AggUDPConfig
	PaxosUDPConfig = apps.PaxosUDPConfig
	// Result is the uniform driver result returned by Run: a value
	// with a one-line Summary.
	Result = apps.Result
	// AggResult/CacheResult/PaxosResult are the typed driver results
	// (Run returns them behind the Result interface).
	AggResult   = apps.AggResult
	CacheResult = apps.CacheResult
	PaxosResult = apps.PaxosResult
)

// AppByName returns an evaluation application (AGG, CACHE, PAXOS, CALC).
func AppByName(name string) *App { return apps.ByName(name) }

// Run executes the experiment driver selected by the config type; app
// may be nil or the application the config drives.
func Run(app *App, cfg any) (Result, error) { return apps.Run(app, cfg) }

// RunAgg, RunCache, and RunPaxos drive the Figure 14 workloads on the
// simulated network; RunAggUDP and RunPaxosUDP drive AGG and PAXOS
// over real UDP sockets. All are reachable uniformly through Run.
var (
	RunAgg      = apps.RunAgg
	RunCache    = apps.RunCache
	RunPaxos    = apps.RunPaxos
	RunAggUDP   = apps.RunAggUDP
	RunPaxosUDP = apps.RunPaxosUDP
)
