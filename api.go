package netcl

import (
	"netcl/internal/apps"
	"netcl/internal/bmv2"
	"netcl/internal/netsim"
	"netcl/internal/p4"
	"netcl/internal/p4rt"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// Public facade: the runtime, simulator, and control-plane types that
// host applications use, re-exported from the internal packages so
// downstream code only imports this package.

// Messaging (the ncl:: host library of Table I).
type (
	// Message mirrors ncl::message: source and destination hosts, the
	// device asked to compute, and the computation id.
	Message = runtime.Message
	// MessageSpec is a computation's message layout (from kernel
	// specifications, §V-A).
	MessageSpec = runtime.MessageSpec
	// Header is the NetCL wire header (src, dst, from, to, comp, act,
	// arg — Fig. 10).
	Header = wire.Header
)

// Pack serializes a NetCL message (ncl::pack).
var Pack = runtime.Pack

// Unpack deserializes a NetCL message (ncl::unpack).
var Unpack = runtime.Unpack

// Wire constants.
const (
	// NoNode marks an absent node id in a header's From/To fields.
	NoNode = wire.None
	// ActReflect et al. are the action codes of Table II.
	ActPass        = wire.ActPass
	ActDrop        = wire.ActDrop
	ActSendHost    = wire.ActSendHost
	ActSendDevice  = wire.ActSendDevice
	ActMulticast   = wire.ActMulticast
	ActReflect     = wire.ActReflect
	ActReflectLong = wire.ActReflectLong
)

// Simulation (the testbed substrate).
type (
	// Network is the discrete-event network simulator.
	Network = netsim.Network
	// Host is a simulated end system running Go callbacks.
	Host = netsim.Host
	// Device is a simulated P4 switch.
	Device = netsim.Device
	// Switch is the behavioral-model P4 interpreter.
	Switch = bmv2.Switch
	// TableEntry is a match-action table entry.
	TableEntry = p4.Entry
	// KeyValue is one matched key of a table entry.
	KeyValue = p4.KeyValue
	// ActionCall invokes a table action with constant arguments.
	ActionCall = p4.ActionCall
)

// NewNetwork creates an empty simulated network.
func NewNetwork() *Network { return netsim.NewNetwork() }

// NewSwitch instantiates a behavioral-model switch for a program.
func NewSwitch(prog *p4.Program) *Switch { return bmv2.New(prog) }

// Control plane and managed memory (requirement R6).
type (
	// ControlPlane is the device control-plane surface (P4Runtime-like).
	ControlPlane = p4rt.Client
	// DeviceConnection mirrors ncl::device_connection: _managed_
	// memory access by NetCL-level names.
	DeviceConnection = runtime.DeviceConnection
)

// DirectControlPlane binds a control plane to an in-process switch.
func DirectControlPlane(sw *Switch) ControlPlane { return &p4rt.Direct{SW: sw} }

// Connect builds a managed-memory connection for a compiled device.
func Connect(cp ControlPlane, dev *DeviceArtifact) *DeviceConnection {
	return &runtime.DeviceConnection{CP: cp, Mems: dev.Module.Mems}
}

// Real-UDP deployment backend.
type (
	// UDPDevice runs a compiled program behind a UDP socket.
	UDPDevice = runtime.UDPDevice
	// HostConn is a host-side UDP endpoint for NetCL messages.
	HostConn = runtime.HostConn
)

// ServeUDPDevice starts a device process on a UDP address.
func ServeUDPDevice(id uint16, addr string, prog *p4.Program) (*UDPDevice, error) {
	return runtime.ServeUDPDevice(id, addr, prog)
}

// DialUDP opens a host endpoint targeting a device address.
func DialUDP(id uint16, local, device string) (*HostConn, error) {
	return runtime.DialUDP(id, local, device)
}

// Evaluation applications (§VII), exposed for examples and tools.
type (
	// App is one of the paper's evaluation applications.
	App = apps.App
	// AggConfig/CacheConfig/PaxosConfig parameterize the end-to-end
	// experiment drivers of Figure 14.
	AggConfig   = apps.AggConfig
	CacheConfig = apps.CacheConfig
	PaxosConfig = apps.PaxosConfig
)

// AppByName returns an evaluation application (AGG, CACHE, PAXOS, CALC).
func AppByName(name string) *App { return apps.ByName(name) }

// RunAgg, RunCache, and RunPaxos drive the Figure 14 workloads.
var (
	RunAgg   = apps.RunAgg
	RunCache = apps.RunCache
	RunPaxos = apps.RunPaxos
)
