package netcl

import (
	"fmt"
	gort "runtime"
	"strings"

	"netcl/internal/apps"
)

// Control-plane benchmark: transactional write batches against
// single-op CRUD on a 100k-entry table, over the in-process client and
// the TCP wire, plus data-path p99 during a control-plane storm.
// Emitted as BENCH_ctrl.json by `nclbench -ctrl`.

// CtrlPoint is one (transport, mode) throughput measurement.
type CtrlPoint = apps.CtrlPoint

// CtrlStorm is the storm-phase measurement (data-path latency under
// control-plane churn).
type CtrlStorm = apps.CtrlStorm

// CtrlReport is the control-plane benchmark.
type CtrlReport struct {
	// GOMAXPROCS/NumCPU record the machine: on one CPU the storm writer
	// and the data path time-share a core, so storm p99 includes
	// scheduling delay, not just snapshot-publication cost.
	GOMAXPROCS   int          `json:"gomaxprocs"`
	NumCPU       int          `json:"num_cpu"`
	TableEntries int          `json:"table_entries"`
	BatchSize    int          `json:"batch_size"`
	Points       []*CtrlPoint `json:"points"`
	// SpeedupDirect/SpeedupTCP are batched over single-op updates/sec
	// per transport.
	SpeedupDirect float64    `json:"speedup_direct"`
	SpeedupTCP    float64    `json:"speedup_tcp"`
	Storm         *CtrlStorm `json:"storm"`
}

// BenchCtrl measures control-plane update throughput (updates ops per
// mode, 0 = default) and data-path latency under churn.
func BenchCtrl(updates int) (*CtrlReport, error) {
	res, err := apps.RunCtrl(apps.CtrlConfig{Updates: updates})
	if err != nil {
		return nil, err
	}
	rep := &CtrlReport{
		GOMAXPROCS: gort.GOMAXPROCS(0), NumCPU: gort.NumCPU(),
		TableEntries: res.TableEntries, BatchSize: res.BatchSize,
		Points: res.Points, Storm: res.Storm,
	}
	rate := map[string]float64{}
	for _, p := range res.Points {
		rate[p.Transport+"/"+p.Mode] = p.OpsPerSec
	}
	if s := rate["direct/single"]; s > 0 {
		rep.SpeedupDirect = rate["direct/batched"] / s
	}
	if s := rate["tcp/single"]; s > 0 {
		rep.SpeedupTCP = rate["tcp/batched"] / s
	}
	return rep, nil
}

// FormatCtrl renders the benchmark as text.
func FormatCtrl(rep *CtrlReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CTRL — transactional control plane, %d-entry exact table, batch=%d (GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.TableEntries, rep.BatchSize, rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(&b, "%-9s %-9s %10s %12s %9s\n", "TRANSPORT", "MODE", "OPS", "UPDATES/SEC", "SPEEDUP")
	for _, p := range rep.Points {
		speed := ""
		if p.Mode == "batched" {
			s := rep.SpeedupDirect
			if p.Transport == "tcp" {
				s = rep.SpeedupTCP
			}
			speed = fmt.Sprintf("%.1fx", s)
		}
		fmt.Fprintf(&b, "%-9s %-9s %10d %12.0f %9s\n", p.Transport, p.Mode, p.Ops, p.OpsPerSec, speed)
	}
	if st := rep.Storm; st != nil {
		fmt.Fprintf(&b, "storm: %d batches × %d ops at %.0f updates/sec over TCP\n",
			st.Batches, st.OpsPerBatch, st.UpdatesPerSec)
		fmt.Fprintf(&b, "data path: quiet p50/p99 = %.2f/%.2f µs, under storm = %.2f/%.2f µs (%d pkts)\n",
			st.QuietP50Us, st.QuietP99Us, st.StormP50Us, st.StormP99Us, st.Packets)
	}
	if rep.NumCPU == 1 {
		b.WriteString("note: single-CPU machine — the storm writer and data path time-share one core, so storm p99 includes scheduling delay\n")
	}
	return b.String()
}
