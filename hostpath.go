package netcl

import (
	"fmt"
	"strings"

	"netcl/internal/apps"
	"netcl/internal/passes"
)

// Host-path benchmark: the pipelined channel swept over window sizes
// on the simulated network, emitted as BENCH_hostpath.json by
// `nclbench -hostpath`. Simulated time makes the sweep deterministic;
// the allocation probe is the only wall-clock measurement.

// HostpathPoint is one window size's measurement.
type HostpathPoint = apps.HostpathResult

// HostpathReport is the host-path pipeline benchmark.
type HostpathReport struct {
	Ops    int             `json:"ops"`
	Points []*HostpathPoint `json:"points"`
	// AllocsPerMsg is steady-state heap allocations per message on the
	// channel send path (pooled pack + post + complete).
	AllocsPerMsg float64 `json:"allocs_per_msg"`
}

// BenchHostpath sweeps the channel over window sizes {1,4,16,64} with
// ops CALC calls each (0 = default) and probes send-path allocations.
// Every point must produce the identical result-hash chain: the window
// only reorders transport traffic, never application results.
func BenchHostpath(ops int) (*HostpathReport, error) {
	if ops <= 0 {
		ops = 512
	}
	rep := &HostpathReport{Ops: ops}
	for _, w := range []int{1, 4, 16, 64} {
		res, err := apps.RunHostpath(apps.HostpathConfig{
			Window: w, Ops: ops, Target: passes.TargetTNA,
		})
		if err != nil {
			return nil, fmt.Errorf("hostpath window %d: %w", w, err)
		}
		if res.Mismatches != 0 {
			return nil, fmt.Errorf("hostpath window %d: %d wrong results", w, res.Mismatches)
		}
		if len(rep.Points) > 0 && res.Results != rep.Points[0].Results {
			return nil, fmt.Errorf("hostpath window %d: result hash diverged from window %d",
				w, rep.Points[0].Window)
		}
		rep.Points = append(rep.Points, res)
	}
	allocs, err := apps.HostpathSendAllocs(0)
	if err != nil {
		return nil, err
	}
	rep.AllocsPerMsg = allocs
	return rep, nil
}

// FormatHostpath renders the benchmark as text.
func FormatHostpath(rep *HostpathReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "HOSTPATH — pipelined channel over the simulated network, %d CALC calls per point\n", rep.Ops)
	fmt.Fprintf(&b, "%-7s %14s %8s %10s %10s %8s %9s\n",
		"WINDOW", "MSGS/SEC(sim)", "SPEEDUP", "P50(µs)", "P99(µs)", "RETRANS", "INFLIGHT")
	base := 0.0
	for _, p := range rep.Points {
		if base == 0 {
			base = p.MsgsPerSec
		}
		speedup := 0.0
		if base > 0 {
			speedup = p.MsgsPerSec / base
		}
		fmt.Fprintf(&b, "%-7d %14.0f %7.2fx %10.2f %10.2f %8d %9d\n",
			p.Window, p.MsgsPerSec, speedup, p.P50Ns/1e3, p.P99Ns/1e3,
			p.Retransmits, p.PeakInFlight)
	}
	fmt.Fprintf(&b, "send path: %.2f allocs/msg (pooled pack + post + complete)\n", rep.AllocsPerMsg)
	return b.String()
}
