// Quickstart: compile a NetCL kernel, run it on a software device
// behind a real UDP socket, and exchange messages with it — the
// paper's Figure 6 workflow end to end on loopback.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"netcl"
)

// The device code: the paper's calculator example (§VII, CALC). The
// kernel computes on in-flight messages and reflects the result back
// to the sender (Table II's reflect action).
const deviceCode = `
#define OP_ADD 1
#define OP_SUB 2
#define OP_AND 3
#define OP_OR  4
#define OP_XOR 5

_kernel(1) void calc(uint8_t op, uint32_t a, uint32_t b, uint32_t &res) {
  if (op == OP_ADD)      res = a + b;
  else if (op == OP_SUB) res = a - b;
  else if (op == OP_AND) res = a & b;
  else if (op == OP_OR)  res = a | b;
  else if (op == OP_XOR) res = a ^ b;
  return ncl::reflect();
}
`

func main() {
	// 1. Compile the device code for the Tofino target (device 1).
	art, err := netcl.Compile("calc", deviceCode, netcl.Options{Target: netcl.TargetTNA})
	if err != nil {
		log.Fatal(err)
	}
	dev := art.Devices[0]
	fmt.Printf("compiled kernel, specification %s, %d lines of P4 generated\n",
		art.Specs[1], countLines(dev.Source))

	// 2. Start the device: a behavioral-model switch behind a UDP
	//    socket (in a deployment this is the physical switch).
	device, err := netcl.ServeUDPDevice(1, "127.0.0.1:0", dev.P4)
	if err != nil {
		log.Fatal(err)
	}
	defer device.Close()

	// 3. The host side: open a NetCL endpoint and register our address
	//    with the operator's forwarding config.
	host, err := netcl.DialUDP(7, "127.0.0.1:0", device.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()
	if err := device.SetNodeAddr(7, host.Addr()); err != nil {
		log.Fatal(err)
	}

	// 4. Offload some arithmetic to the network.
	spec := art.Specs[1]
	ops := []struct {
		name string
		op   uint64
		a, b uint64
	}{
		{"add", 1, 20, 22}, {"sub", 2, 100, 58}, {"and", 3, 0xF0F0, 0x0FF0},
		{"or", 4, 0xF000, 0x000F}, {"xor", 5, 0xAAAA, 0x5555},
	}
	for _, o := range ops {
		// ncl::pack + send: computation 1 at device 1.
		err := host.SendMessage(spec, netcl.Message{Src: 7, Dst: 7, Device: 1, Comp: 1},
			[][]uint64{{o.op}, {o.a}, {o.b}, nil})
		if err != nil {
			log.Fatal(err)
		}
		res := make([]uint64, 1)
		hdr, err := host.RecvMessage(spec, [][]uint64{nil, nil, nil, res}, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s(%#x, %#x) = %#x   (action=%d reflected by device %d)\n",
			o.name, o.a, o.b, res[0], hdr.Act, hdr.From)
	}
	fmt.Println("done: five computations executed in the network")
}

func countLines(s string) int {
	n := 1
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
