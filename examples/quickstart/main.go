// Quickstart: compile a NetCL kernel, run it on a software device
// behind a real UDP socket, and exchange messages with it — the
// paper's Figure 6 workflow end to end on loopback. The last step
// repeats a computation through a deliberately lossy device to show
// the reliable Call path recovering via retransmission.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"netcl"
)

// The device code: the paper's calculator example (§VII, CALC). The
// kernel computes on in-flight messages and reflects the result back
// to the sender (Table II's reflect action).
const deviceCode = `
#define OP_ADD 1
#define OP_SUB 2
#define OP_AND 3
#define OP_OR  4
#define OP_XOR 5

_kernel(1) void calc(uint8_t op, uint32_t a, uint32_t b, uint32_t &res) {
  if (op == OP_ADD)      res = a + b;
  else if (op == OP_SUB) res = a - b;
  else if (op == OP_AND) res = a & b;
  else if (op == OP_OR)  res = a | b;
  else if (op == OP_XOR) res = a ^ b;
  return ncl::reflect();
}
`

func main() {
	// 1. Compile the device code for the Tofino target (device 1).
	art, err := netcl.Compile("calc", deviceCode, netcl.Options{Target: netcl.TargetTNA})
	if err != nil {
		log.Fatal(err)
	}
	dev := art.Devices[0]
	fmt.Printf("compiled kernel, specification %s, %d lines of P4 generated\n",
		art.Specs[1], countLines(dev.Source))

	// 2. Start the device: a behavioral-model switch behind a UDP
	//    socket (in a deployment this is the physical switch).
	device, err := netcl.ServeDevice(netcl.DeviceConfig{
		ID: 1, Addr: "127.0.0.1:0", Prog: dev.P4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer device.Close()

	// 3. The host side: open a NetCL endpoint and register our address
	//    with the operator's forwarding config.
	host, err := netcl.Dial(netcl.DialConfig{
		ID: 7, Local: "127.0.0.1:0", Device: device.Addr(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()
	if err := device.SetNodeAddr(7, host.Addr()); err != nil {
		log.Fatal(err)
	}

	// 4. Offload some arithmetic to the network. CallMessage is the
	//    reliable request/response path of the Endpoint API: each call
	//    carries a sequence number and retransmits on timeout.
	spec := art.Specs[1]
	ops := []struct {
		name string
		op   uint64
		a, b uint64
	}{
		{"add", 1, 20, 22}, {"sub", 2, 100, 58}, {"and", 3, 0xF0F0, 0x0FF0},
		{"or", 4, 0xF000, 0x000F}, {"xor", 5, 0xAAAA, 0x5555},
	}
	for _, o := range ops {
		res := make([]uint64, 1)
		hdr, err := host.CallMessage(spec, netcl.Message{Src: 7, Dst: 7, Device: 1, Comp: 1},
			[][]uint64{{o.op}, {o.a}, {o.b}, nil}, [][]uint64{nil, nil, nil, res}, time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s(%#x, %#x) = %#x   (action=%d reflected by device %d)\n",
			o.name, o.a, o.b, res[0], hdr.Act, hdr.From)
	}
	fmt.Println("done: five computations executed in the network")

	// 5. Chaos: the same computation through a device that drops 25% of
	//    all datagrams (seeded, so the run is reproducible). Call
	//    retransmits with exponential backoff until the reflected
	//    result arrives.
	lossy, err := netcl.ServeDevice(netcl.DeviceConfig{
		ID: 1, Addr: "127.0.0.1:0", Prog: dev.P4,
		Faults: netcl.FaultSpec{LossRate: 0.25, Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}
	host2, err := netcl.Dial(netcl.DialConfig{
		ID: 7, Local: "127.0.0.1:0", Device: lossy.Addr(),
		Reliability: netcl.ReliabilityConfig{Timeout: 20 * time.Millisecond, MaxRetries: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer host2.Close()
	if err := lossy.SetNodeAddr(7, host2.Addr()); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		res := make([]uint64, 1)
		_, err := host2.CallMessage(spec, netcl.Message{Src: 7, Dst: 7, Device: 1, Comp: 1},
			[][]uint64{{1}, {uint64(i)}, {100}, nil}, [][]uint64{nil, nil, nil, res}, 0)
		if err != nil {
			log.Fatal(err)
		}
		if res[0] != uint64(i)+100 {
			log.Fatalf("add(%d, 100) = %d", i, res[0])
		}
	}
	st := host2.Stats()
	lossy.Close() // joins the device loop, settling its fault counters
	fmt.Printf("chaos: 8 calls completed through a 25%%-loss device (%d retransmits, %d dropped datagrams)\n",
		st.Retransmits, lossy.FaultDropped)
}

func countLines(s string) int {
	n := 1
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
