// allreduce: in-network gradient aggregation (the paper's SwitchML
// reproduction, Figure 7). Workers stream 32-value chunks into switch
// slots; the switch reduces them and multicasts each completed slot
// back to every worker — reproducing the flat per-worker throughput of
// Figure 14 (left). The final run injects 1% seeded packet loss and
// shows the slot protocol recovering by retransmission.
//
//	go run ./examples/allreduce
package main

import (
	"fmt"
	"log"

	"netcl"
)

func main() {
	fmt.Println("in-network AllReduce: per-worker throughput vs cluster size")
	fmt.Printf("%-8s %-22s %-22s\n", "WORKERS", "NetCL (ATE/s/worker)", "handwritten P4")
	app := netcl.AppByName("AGG")
	for _, workers := range []int{2, 4, 6} {
		gen, err := run(app, netcl.AggConfig{
			Workers: workers, Chunks: 48, Window: 4, Target: netcl.TargetTNA,
		})
		if err != nil {
			log.Fatal(err)
		}
		base, err := run(app, netcl.AggConfig{
			Workers: workers, Chunks: 48, Window: 4, Target: netcl.TargetTNA,
			Baseline: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if gen.Mismatches+base.Mismatches > 0 {
			log.Fatalf("aggregation mismatches: %d/%d", gen.Mismatches, base.Mismatches)
		}
		fmt.Printf("%-8d %-22.0f %-22.0f\n", workers, gen.ATEPerWorker, base.ATEPerWorker)
	}
	fmt.Println("\nper-worker throughput stays flat as workers are added, and the")
	fmt.Println("NetCL-generated pipeline matches the handwritten P4 exactly.")

	// Chaos: the same workload under 1% seeded packet loss. Lost
	// contributions and completions are retransmitted; the two-version
	// slot scheme keeps the sums exact.
	res, err := netcl.Run(app, netcl.AggConfig{
		Workers: 4, Chunks: 48, Window: 4, Target: netcl.TargetTNA,
		Faults: netcl.FaultConfig{LossRate: 0.01, Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunder 1% injected loss:", res.Summary())
}

// run drives AGG through the unified entry point, with the typed result.
func run(app *netcl.App, cfg netcl.AggConfig) (*netcl.AggResult, error) {
	res, err := netcl.Run(app, cfg)
	if err != nil {
		return nil, err
	}
	return res.(*netcl.AggResult), nil
}
