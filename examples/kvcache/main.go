// kvcache: an in-network key-value cache (the paper's NetCache
// reproduction) on the simulated network. A client issues GETs over a
// key universe; the switch answers cached keys at line rate and only
// misses travel to the KVS server. The example also exercises the
// _managed_ memory API: the controller reads the per-entry hit
// counters through the control plane (requirement R6).
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"log"

	"netcl"
)

func main() {
	// Sweep the cached fraction like Figure 14 (right), driven through
	// the unified Run entry point.
	fmt.Println("in-network KVS cache: response time vs cached keys")
	fmt.Printf("%-12s %-10s %-16s\n", "CACHED KEYS", "HIT RATE", "MEAN RESPONSE")
	for _, cached := range []int{0, 8, 16, 24, 32} {
		r, err := netcl.Run(netcl.AppByName("CACHE"), netcl.CacheConfig{
			CachedKeys: cached,
			TotalKeys:  32,
			Requests:   128,
			Target:     netcl.TargetTNA,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := r.(*netcl.CacheResult)
		if res.WrongValues > 0 {
			log.Fatalf("cache returned %d wrong values", res.WrongValues)
		}
		fmt.Printf("%-12d %8.0f%%  %12.2fµs\n", cached, 100*res.HitRate, res.MeanResponseNs/1e3)
	}

	// Chaos: GETs are idempotent, so the client simply retransmits
	// unanswered requests under injected loss.
	lossyRes, err := netcl.Run(nil, netcl.CacheConfig{
		CachedKeys: 16, TotalKeys: 32, Requests: 128, Target: netcl.TargetTNA,
		Faults: netcl.FaultConfig{LossRate: 0.02, Seed: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunder 2% injected loss:", lossyRes.Summary())

	// Managed memory: compile the cache, install one key by hand, and
	// read its hit counter back through the control plane.
	app := netcl.AppByName("CACHE")
	art, err := netcl.Compile("cache", app.NetCL, netcl.Options{
		Target: netcl.TargetTNA, Defines: app.Defines, Devices: []uint16{1},
	})
	if err != nil {
		log.Fatal(err)
	}
	sw := netcl.NewSwitch(art.Device(1).P4)
	conn := netcl.Connect(netcl.DirectControlPlane(sw), art.Device(1))

	// Install key 99 -> cache line 0 via managed lookup memory, then
	// poke the hit counter and read it back (ncl::managed_read).
	if err := conn.LookupInsert("Index", 99, 0); err != nil {
		log.Fatal(err)
	}
	if err := conn.ManagedWrite("HitCount", []int{0}, 41); err != nil {
		log.Fatal(err)
	}
	hits, err := conn.ManagedRead("HitCount", []int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmanaged memory: HitCount[0] = %d (written through the control plane)\n", hits+1)
}
