// paxos: consensus as a network service (the paper's P4xos
// reproduction, Figure 11). One NetCL program defines three kernels of
// a single computation, placed with _at() on the leader, the acceptor
// group, and the learner; the simulator deploys them on five switches
// and a client drives commands through the fabric.
//
//	go run ./examples/paxos
package main

import (
	"fmt"
	"log"

	"netcl"
)

func main() {
	fmt.Println("in-network Paxos: leader + 3 acceptors + learner")
	app := netcl.AppByName("PAXOS")
	r, err := netcl.Run(app, netcl.PaxosConfig{Commands: 32, Target: netcl.TargetTNA})
	if err != nil {
		log.Fatal(err)
	}
	res := r.(*netcl.PaxosResult)
	fmt.Printf("submitted %d commands, delivered %d, wrong values %d\n",
		res.Submitted, res.Delivered, res.WrongValue)
	if res.Delivered == res.Submitted && res.WrongValue == 0 {
		fmt.Println("every command was chosen by a quorum and delivered exactly once")
	}

	// Chaos: the client retransmits commands the learner has not
	// delivered; retried commands are chosen under fresh instances and
	// deduplicated by value, so delivery stays exactly-once.
	lossy, err := netcl.Run(app, netcl.PaxosConfig{
		Commands: 32, Target: netcl.TargetTNA,
		Faults: netcl.FaultConfig{LossRate: 0.01, Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("under 1% injected loss:", lossy.Summary())

	// Show the multi-kernel placement in the source: the same
	// computation id, three locations, matching specifications (§V-C).
	for _, dev := range []uint16{1, 2, 5} {
		art, err := netcl.Compile("paxos", app.NetCL, netcl.Options{
			Target: netcl.TargetTNA, Devices: []uint16{dev},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device %d compiles %d kernel(s); message specification %s\n",
			dev, len(art.Device(dev).Module.Funcs), art.Specs[1])
	}
}
