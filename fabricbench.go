package netcl

import (
	"fmt"
	"strings"

	"netcl/internal/apps"
)

// Rack-scale fabric benchmark: hierarchical in-network aggregation
// across multi-tier topologies (leaf/spine, fat-tree), emitted as
// BENCH_fabric.json by `nclbench -fabric`. The sweep compares
// host-direct-to-root (1 tier, the flat SwitchML placement) against
// two- and three-level aggregation trees at equal host count: each
// added tier cuts the bytes entering the top of the fabric by its
// fan-in, which is the whole point of pushing reduction into the
// rack switches.

// FabricPoint is one (tiers, hosts) measurement with its traffic
// reduction relative to the flat run at the same host count.
type FabricPoint struct {
	apps.FabricAggResult
	// ReductionVsFlat is flat root-ingress bytes over this run's (0
	// when no flat run exists at this host count — the flat placement
	// caps at 16 workers, which is exactly the wall the hierarchy
	// removes).
	ReductionVsFlat float64 `json:"reduction_vs_flat,omitempty"`
}

// FabricIdentity is one partitioned run pinned against the serial
// delivery hash chain.
type FabricIdentity struct {
	Tiers      int    `json:"tiers"`
	Partitions int    `json:"partitions"`
	TraceHash  uint64 `json:"trace_hash"`
	Matches    bool   `json:"matches_serial"`
}

// FabricReport is the fabric benchmark.
type FabricReport struct {
	Leaves int            `json:"leaves"`
	Groups int            `json:"groups"`
	Rounds int            `json:"rounds"`
	Points []*FabricPoint `json:"points"`
	// Identity pins partitioned fabric runs (k ∈ {2,4}) to the serial
	// delivery hash chain at the largest flat-comparable scale.
	SerialTraceHash uint64            `json:"serial_trace_hash"`
	Identity        []*FabricIdentity `json:"identity"`
}

// BenchFabric sweeps tiers {1,2,3} over worker counts. The flat
// baseline runs only where its 16-bit contribution bitmap allows; the
// hierarchical placements continue past that wall. smoke restricts to
// one rack size and fewer rounds (the CI variant).
func BenchFabric(smoke bool) (*FabricReport, error) {
	const leaves, groups = 4, 2
	rounds := 16
	perLeaf := []int{2, 4, 8, 16}
	if smoke {
		rounds = 4
		perLeaf = []int{2, 4}
	}
	rep := &FabricReport{Leaves: leaves, Groups: groups, Rounds: rounds}

	flatIngress := map[int]uint64{} // workers → flat root-ingress bytes
	for _, tiers := range []int{1, 2, 3} {
		for _, w := range perLeaf {
			workers := leaves * w
			if tiers == 1 && workers > 16 {
				continue // the flat placement's bitmap wall
			}
			res, err := apps.RunFabricAgg(apps.FabricAggConfig{
				Tiers: tiers, Leaves: leaves, WorkersPerLeaf: w,
				Groups: groups, Rounds: rounds,
			})
			if err != nil {
				return nil, fmt.Errorf("fabric tiers=%d workers=%d: %w", tiers, workers, err)
			}
			if res.Completed != res.Expected || res.Mismatches != 0 {
				return nil, fmt.Errorf("fabric tiers=%d workers=%d: %d/%d rounds completed, %d mismatches",
					tiers, workers, res.Completed, res.Expected, res.Mismatches)
			}
			pt := &FabricPoint{FabricAggResult: *res}
			if tiers == 1 {
				flatIngress[workers] = res.RootIngressBytes
			} else if flat, ok := flatIngress[workers]; ok && res.RootIngressBytes > 0 {
				pt.ReductionVsFlat = float64(flat) / float64(res.RootIngressBytes)
			}
			rep.Points = append(rep.Points, pt)
		}
	}

	// The 2-tier run must cut root-ingress traffic by ≈ the leaf
	// fan-in versus host-direct-to-root at equal host count.
	for _, pt := range rep.Points {
		if pt.Tiers == 2 && pt.ReductionVsFlat > 0 {
			fanin := float64(pt.Workers) / float64(leaves)
			if pt.ReductionVsFlat < fanin*0.85 || pt.ReductionVsFlat > fanin*1.15 {
				return nil, fmt.Errorf("fabric: 2-tier reduction %.2f× at %d workers, want ≈%.0f× (leaf fan-in)",
					pt.ReductionVsFlat, pt.Workers, fanin)
			}
		}
	}

	// Partition-invariance witness: the partitioned fabric runs must
	// reproduce the serial delivery hash chain bit for bit.
	idCfg := apps.FabricAggConfig{
		Tiers: 2, Leaves: leaves, WorkersPerLeaf: 4, Groups: groups,
		Rounds: rounds, Trace: true,
	}
	serial, err := apps.RunFabricAgg(idCfg)
	if err != nil {
		return nil, fmt.Errorf("fabric identity serial: %w", err)
	}
	rep.SerialTraceHash = serial.TraceHash
	for _, k := range []int{2, 4} {
		cfg := idCfg
		cfg.Partitions = k
		res, err := apps.RunFabricAgg(cfg)
		if err != nil {
			return nil, fmt.Errorf("fabric identity k=%d: %w", k, err)
		}
		id := &FabricIdentity{
			Tiers: cfg.Tiers, Partitions: res.Partitions,
			TraceHash: res.TraceHash, Matches: res.TraceHash == serial.TraceHash,
		}
		if !id.Matches {
			return nil, fmt.Errorf("fabric identity k=%d: trace hash %#x != serial %#x",
				k, res.TraceHash, serial.TraceHash)
		}
		rep.Identity = append(rep.Identity, id)
	}
	return rep, nil
}

// FormatFabric renders the benchmark as text.
func FormatFabric(rep *FabricReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FABRIC — hierarchical in-network aggregation, %d leaves / %d groups, %d rounds\n",
		rep.Leaves, rep.Groups, rep.Rounds)
	fmt.Fprintf(&b, "%-6s %7s %8s %12s %14s %12s %10s\n",
		"TIERS", "WORKERS", "DEVICES", "GOODPUT(e/s)", "ROOT-IN(B)", "REDUCTION", "EVENTS")
	for _, p := range rep.Points {
		red := "—"
		if p.ReductionVsFlat > 0 {
			red = fmt.Sprintf("%.2f×", p.ReductionVsFlat)
		} else if p.Tiers == 1 {
			red = "1.00×"
		}
		fmt.Fprintf(&b, "%-6d %7d %8d %12.0f %14d %10s %10d\n",
			p.Tiers, p.Workers, p.Devices, p.GoodputElems, p.RootIngressBytes, red, p.Events)
	}
	for _, id := range rep.Identity {
		fmt.Fprintf(&b, "identity: tiers=%d k=%d trace=%#x matches_serial=%v\n",
			id.Tiers, id.Partitions, id.TraceHash, id.Matches)
	}
	return b.String()
}
